// End-to-end profiler tests over the real application: every backend's
// checkpoint dump must be almost fully covered by named phase spans, the
// per-file statistics must land in the registry, the paper-figure reports
// must contain their phases, and traces must be byte-identical across runs.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"

namespace paramrio::bench {
namespace {

enzo::SimulationConfig tiny_config() {
  enzo::SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;
  c.compute_per_cell = 0.0;
  return c;
}

RunSpec tiny_spec(Backend b, obs::Collector* col) {
  RunSpec spec;
  spec.machine = platform::origin2000_xfs();
  spec.config = tiny_config();
  spec.nprocs = 4;
  spec.backend = b;
  spec.collector = col;
  return spec;
}

class ObsBackend : public ::testing::TestWithParam<Backend> {};

// The acceptance property: depth-1 categorized spans account for >= 95% of
// each rank's dump wall time, under every backend.
TEST_P(ObsBackend, PhaseSpansCoverDumpTime) {
  obs::Collector col;
  run_enzo_io(tiny_spec(GetParam(), &col));
  ASSERT_TRUE(col.balanced());

  int dumps_seen = 0;
  for (const obs::SpanRecord& dump : col.spans()) {
    if (dump.name != "dump" || dump.depth != 0) continue;
    ++dumps_seen;
    double covered = 0.0;
    for (const obs::SpanRecord& child : col.spans()) {
      if (child.rank != dump.rank || child.depth != 1) continue;
      if (child.t_start < dump.t_start || child.t_end > dump.t_end) continue;
      covered += child.cpu_dt + child.comm_dt + child.io_dt;
    }
    double wall = dump.duration();
    if (wall > 0.0) {
      EXPECT_GE(covered, 0.95 * wall)
          << to_string(GetParam()) << " rank " << dump.rank << ": phases "
          << covered << "s of " << wall << "s dump";
    }
  }
  EXPECT_EQ(dumps_seen, 4);  // one depth-0 dump span per rank
}

// Spans and the engine agree: the sum of each rank's depth-0 span deltas
// can never exceed what the engine accounted to that rank.
TEST_P(ObsBackend, RankBreakdownIsConsistent) {
  obs::Collector col;
  run_enzo_io(tiny_spec(GetParam(), &col));
  obs::Report r = obs::build_report(col);
  ASSERT_EQ(r.ranks.size(), 4u);
  for (const obs::RankBreakdown& rb : r.ranks) {
    const std::string scope = "rank" + std::to_string(rb.rank);
    ASSERT_TRUE(col.registry().has_scope(scope));
    double engine_total = col.registry().get_value(scope, "total_time");
    EXPECT_LE(rb.total_time, engine_total + 1e-9);
    EXPECT_GT(rb.io_time, 0.0);  // a dump without I/O is not a dump
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ObsBackend,
                         ::testing::Values(Backend::kHdf4, Backend::kMpiIo,
                                           Backend::kHdf5, Backend::kPnetcdf),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(ObsEnzo, FileStatsPersistIntoRegistry) {
  obs::Collector col;
  run_enzo_io(tiny_spec(Backend::kMpiIo, &col));
  // File::close() folded its FileStats into "file:<path>|<hints_key>".
  const obs::MetricsRegistry& reg = col.registry();
  std::string file_scope;
  for (const auto& [scope, _] : reg.scopes()) {
    if (scope.rfind("file:dump.enzo|", 0) == 0) file_scope = scope;
  }
  ASSERT_FALSE(file_scope.empty()) << reg.format();
  EXPECT_GT(reg.get(file_scope, "collective_ops"), 0u);
  EXPECT_GT(reg.get(file_scope, "two_phase_windows"), 0u);
  EXPECT_GT(reg.get(file_scope, "cb_peak_window_bytes"), 0u);
  // Engine + network totals rode along.
  EXPECT_GT(reg.get("proc", "io_bytes_written"), 0u);
  EXPECT_GT(reg.get("net", "bytes"), 0u);
  EXPECT_GT(reg.get_value("proc", "makespan"), 0.0);
}

TEST(ObsEnzo, TracerStatsLandInRegistry) {
  obs::Collector col;
  trace::IoTracer tracer;
  RunSpec spec = tiny_spec(Backend::kMpiIo, &col);
  spec.tracer = &tracer;
  run_enzo_io(spec);
  const obs::MetricsRegistry& reg = col.registry();
  EXPECT_GT(reg.get("trace:write", "requests"), 0u);
  EXPECT_GT(reg.get("trace:read", "bytes"), 0u);
  EXPECT_GT(reg.get("trace", "opens"), 0u);
  EXPECT_GE(reg.get_value("trace:write", "sequential_fraction"), 0.0);
}

// Fig 4-style attribution: the HDF4 backend's dump decomposes into a
// gather (comm) phase and sequential write (io) phases.
TEST(ObsEnzo, Hdf4ReportSplitsGatherFromWrites) {
  obs::Collector col;
  run_enzo_io(tiny_spec(Backend::kHdf4, &col));
  obs::Report r = obs::build_report(col);
  const obs::PhaseStats* gather = r.phase("hdf4.gather");
  ASSERT_NE(gather, nullptr);
  EXPECT_GT(gather->comm_time, 0.0);
  double write_io =
      r.time_sum("hdf4.topgrid_write") + r.time_sum("hdf4.subgrid_write");
  EXPECT_GT(write_io, 0.0);
  const obs::PhaseStats* top = r.phase("hdf4.topgrid_write");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->calls, 1u);  // only rank 0 writes the top grid
  EXPECT_GT(top->io_time, 0.0);
}

// Fig 5/10-style attribution: the HDF5 backend's overheads (metadata sync
// in dataset create/close, hyperslab packing) appear as nested spans.
TEST(ObsEnzo, Hdf5OverheadsAreAttributed) {
  obs::Collector col;
  run_enzo_io(tiny_spec(Backend::kHdf5, &col));
  double sync = 0.0, pack_steps = 0.0, creates = 0.0;
  for (const obs::SpanRecord& s : col.spans()) {
    if (s.name == "hdf5.metadata_sync") sync += s.comm_dt;
    if (s.name == "hdf5.dataset_create") creates += 1.0;
    if (s.name == "hdf5.pack") {
      for (const auto& [name, v] : s.counters) {
        if (name == "pack_steps") pack_steps += static_cast<double>(v);
      }
    }
  }
  EXPECT_GT(sync, 0.0);
  EXPECT_GT(creates, 0.0);
  EXPECT_GT(pack_steps, 0.0);
}

TEST(ObsEnzo, TraceAndReportAreByteIdenticalAcrossRuns) {
  obs::Collector a, b;
  run_enzo_io(tiny_spec(Backend::kMpiIo, &a));
  run_enzo_io(tiny_spec(Backend::kMpiIo, &b));
  EXPECT_EQ(obs::chrome_trace_json(a), obs::chrome_trace_json(b));
  EXPECT_EQ(obs::report_text(obs::build_report(a)),
            obs::report_text(obs::build_report(b)));
  EXPECT_EQ(a.registry().to_json(2), b.registry().to_json(2));
}

}  // namespace
}  // namespace paramrio::bench
