// End-to-end profiler tests over the real application: every backend's
// checkpoint dump must be almost fully covered by named phase spans, the
// per-file statistics must land in the registry, the paper-figure reports
// must contain their phases, and traces must be byte-identical across runs.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness.hpp"
#include "obs/critical_path.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"

namespace paramrio::bench {
namespace {

enzo::SimulationConfig tiny_config() {
  enzo::SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;
  c.compute_per_cell = 0.0;
  return c;
}

RunSpec tiny_spec(Backend b, obs::Collector* col) {
  RunSpec spec;
  spec.machine = platform::origin2000_xfs();
  spec.config = tiny_config();
  spec.nprocs = 4;
  spec.backend = b;
  spec.collector = col;
  return spec;
}

class ObsBackend : public ::testing::TestWithParam<Backend> {};

// The acceptance property: depth-1 categorized spans account for >= 95% of
// each rank's dump wall time, under every backend.
TEST_P(ObsBackend, PhaseSpansCoverDumpTime) {
  obs::Collector col;
  run_enzo_io(tiny_spec(GetParam(), &col));
  ASSERT_TRUE(col.balanced());

  int dumps_seen = 0;
  for (const obs::SpanRecord& dump : col.spans()) {
    if (dump.name != "dump" || dump.depth != 0) continue;
    ++dumps_seen;
    double covered = 0.0;
    for (const obs::SpanRecord& child : col.spans()) {
      if (child.rank != dump.rank || child.depth != 1) continue;
      if (child.t_start < dump.t_start || child.t_end > dump.t_end) continue;
      covered += child.cpu_dt + child.comm_dt + child.io_dt;
    }
    double wall = dump.duration();
    if (wall > 0.0) {
      EXPECT_GE(covered, 0.95 * wall)
          << to_string(GetParam()) << " rank " << dump.rank << ": phases "
          << covered << "s of " << wall << "s dump";
    }
  }
  EXPECT_EQ(dumps_seen, 4);  // one depth-0 dump span per rank
}

// Spans and the engine agree: the sum of each rank's depth-0 span deltas
// can never exceed what the engine accounted to that rank.
TEST_P(ObsBackend, RankBreakdownIsConsistent) {
  obs::Collector col;
  run_enzo_io(tiny_spec(GetParam(), &col));
  obs::Report r = obs::build_report(col);
  ASSERT_EQ(r.ranks.size(), 4u);
  for (const obs::RankBreakdown& rb : r.ranks) {
    const std::string scope = "rank" + std::to_string(rb.rank);
    ASSERT_TRUE(col.registry().has_scope(scope));
    double engine_total = col.registry().get_value(scope, "total_time");
    EXPECT_LE(rb.total_time, engine_total + 1e-9);
    EXPECT_GT(rb.io_time, 0.0);  // a dump without I/O is not a dump
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ObsBackend,
                         ::testing::Values(Backend::kHdf4, Backend::kMpiIo,
                                           Backend::kHdf5, Backend::kPnetcdf),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(ObsEnzo, FileStatsPersistIntoRegistry) {
  obs::Collector col;
  run_enzo_io(tiny_spec(Backend::kMpiIo, &col));
  // File::close() folded its FileStats into "file:<path>|<hints_key>".
  const obs::MetricsRegistry& reg = col.registry();
  std::string file_scope;
  for (const auto& [scope, _] : reg.scopes()) {
    if (scope.rfind("file:dump.enzo|", 0) == 0) file_scope = scope;
  }
  ASSERT_FALSE(file_scope.empty()) << reg.format();
  EXPECT_GT(reg.get(file_scope, "collective_ops"), 0u);
  EXPECT_GT(reg.get(file_scope, "two_phase_windows"), 0u);
  EXPECT_GT(reg.get(file_scope, "cb_peak_window_bytes"), 0u);
  // Engine + network totals rode along.
  EXPECT_GT(reg.get("proc", "io_bytes_written"), 0u);
  EXPECT_GT(reg.get("net", "bytes"), 0u);
  EXPECT_GT(reg.get_value("proc", "makespan"), 0.0);
}

TEST(ObsEnzo, TracerStatsLandInRegistry) {
  obs::Collector col;
  trace::IoTracer tracer;
  RunSpec spec = tiny_spec(Backend::kMpiIo, &col);
  spec.tracer = &tracer;
  run_enzo_io(spec);
  const obs::MetricsRegistry& reg = col.registry();
  EXPECT_GT(reg.get("trace:write", "requests"), 0u);
  EXPECT_GT(reg.get("trace:read", "bytes"), 0u);
  EXPECT_GT(reg.get("trace", "opens"), 0u);
  EXPECT_GE(reg.get_value("trace:write", "sequential_fraction"), 0.0);
}

// Fig 4-style attribution: the HDF4 backend's dump decomposes into a
// gather (comm) phase and sequential write (io) phases.
TEST(ObsEnzo, Hdf4ReportSplitsGatherFromWrites) {
  obs::Collector col;
  run_enzo_io(tiny_spec(Backend::kHdf4, &col));
  obs::Report r = obs::build_report(col);
  const obs::PhaseStats* gather = r.phase("hdf4.gather");
  ASSERT_NE(gather, nullptr);
  EXPECT_GT(gather->comm_time, 0.0);
  double write_io =
      r.time_sum("hdf4.topgrid_write") + r.time_sum("hdf4.subgrid_write");
  EXPECT_GT(write_io, 0.0);
  const obs::PhaseStats* top = r.phase("hdf4.topgrid_write");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->calls, 1u);  // only rank 0 writes the top grid
  EXPECT_GT(top->io_time, 0.0);
}

// Fig 5/10-style attribution: the HDF5 backend's overheads (metadata sync
// in dataset create/close, hyperslab packing) appear as nested spans.
TEST(ObsEnzo, Hdf5OverheadsAreAttributed) {
  obs::Collector col;
  run_enzo_io(tiny_spec(Backend::kHdf5, &col));
  double sync = 0.0, pack_steps = 0.0, creates = 0.0;
  for (const obs::SpanRecord& s : col.spans()) {
    if (s.name == "hdf5.metadata_sync") sync += s.comm_dt;
    if (s.name == "hdf5.dataset_create") creates += 1.0;
    if (s.name == "hdf5.pack") {
      for (const auto& [name, v] : s.counters) {
        if (name == "pack_steps") pack_steps += static_cast<double>(v);
      }
    }
  }
  EXPECT_GT(sync, 0.0);
  EXPECT_GT(creates, 0.0);
  EXPECT_GT(pack_steps, 0.0);
}

// The PR-8 acceptance property: the blame engine's per-phase attribution
// covers >= 95% of every backend's dump wall time, and each rank's blame
// vector is an exact decomposition of its wall.
TEST_P(ObsBackend, BlameAttributionCoversDumpWall) {
  obs::Collector col;
  col.set_detail(true);
  run_enzo_io(tiny_spec(GetParam(), &col));

  const obs::BlameReport dump = obs::build_blame(col, "dump");
  ASSERT_EQ(dump.nranks, 4);
  EXPECT_GT(dump.wall_time, 0.0);
  EXPECT_GE(dump.attributed_fraction, 0.95)
      << to_string(GetParam()) << ": phases cover only "
      << dump.attributed_fraction * 100.0 << "% of dump wall\n"
      << obs::blame_text(dump);
  for (const obs::RankBlame& rb : dump.ranks) {
    double total = 0.0;
    for (double v : rb.blame) total += v;
    EXPECT_NEAR(total, rb.wall, 1e-9 * std::max(1.0, rb.wall))
        << to_string(GetParam()) << " rank " << rb.rank;
  }
  EXPECT_GE(dump.critical_rank, 0);

  const obs::BlameReport restart = obs::build_blame(col, "restart_read");
  ASSERT_EQ(restart.nranks, 4);
  EXPECT_GE(restart.attributed_fraction, 0.95)
      << to_string(GetParam()) << "\n" << obs::blame_text(restart);
}

// Blame is computed purely from deterministic virtual-time records, so the
// whole report — text and JSON — is byte-identical across the fiber/thread
// engine backends, and the *dump* report of every read-free dump path
// additionally survives schedule perturbation untouched.  Paths that read
// under contention are exempt from the cross-seed claim: demand reads race
// the buffer cache (and prefetches), tied arbitration legitimately decides
// hit-vs-miss, and so their virtual time is a per-seed quantity — that
// covers every backend's restart and the HDF5 dump (metadata
// read-modify-write).  A pre-existing property of the cached read path,
// faithfully reported, not blame-engine nondeterminism.
TEST_P(ObsBackend, BlameIsByteIdenticalAcrossSeedsAndEngines) {
  auto blame_of = [&](std::uint64_t seed, sim::SchedBackend engine) {
    obs::Collector col;
    col.set_detail(true);
    RunSpec spec = tiny_spec(GetParam(), &col);
    spec.sched_seed = seed;
    spec.engine_backend = engine;
    run_enzo_io(spec);
    return std::pair<std::string, std::string>(
        obs::blame_json(obs::build_blame(col, "dump")),
        obs::blame_text(obs::build_blame(col, "restart_read")));
  };
  const auto ref = blame_of(0, sim::SchedBackend::kFibers);
  EXPECT_EQ(blame_of(0, sim::SchedBackend::kThreads), ref)
      << to_string(GetParam()) << ": thread engine diverged";
  if (GetParam() != Backend::kHdf5) {
    EXPECT_EQ(blame_of(1, sim::SchedBackend::kFibers).first, ref.first)
        << to_string(GetParam()) << ": dump blame diverged under seed 1";
    EXPECT_EQ(blame_of(2, sim::SchedBackend::kFibers).first, ref.first)
        << to_string(GetParam()) << ": dump blame diverged under seed 2";
  }
}

// Satellite 6: detail mode is strictly additive.  The default (detail-off)
// registry export is byte-identical to pre-PR output, and turning detail on
// only adds "hist:" / "timeline:" scopes — every pre-existing scope stays
// byte-for-byte untouched.
TEST(ObsEnzo, DetailExportIsAdditiveAndDefaultUnchanged) {
  obs::Collector off1, off2, on;
  on.set_detail(true);
  run_enzo_io(tiny_spec(Backend::kMpiIo, &off1));
  run_enzo_io(tiny_spec(Backend::kMpiIo, &off2));
  run_enzo_io(tiny_spec(Backend::kMpiIo, &on));

  // Detail-off leaves no trace of the instrumentation.
  EXPECT_EQ(off1.registry().to_json(2), off2.registry().to_json(2));
  EXPECT_TRUE(off1.timeline().empty());
  EXPECT_TRUE(off1.histograms().empty());
  EXPECT_TRUE(off1.waits().empty());
  for (const auto& [scope, _] : off1.registry().scopes()) {
    EXPECT_TRUE(scope.rfind("hist:", 0) != 0 &&
                scope.rfind("timeline:", 0) != 0)
        << "detail scope in a detail-off registry: " << scope;
  }

  // Detail-on recorded the new telemetry...
  EXPECT_FALSE(on.timeline().empty());
  EXPECT_GT(on.histograms().count("pfs.write"), 0u);
  EXPECT_GT(on.histograms().count("net.message"), 0u);
  EXPECT_GT(on.histograms().count("two_phase.window"), 0u);
  EXPECT_FALSE(on.waits().empty());

  // ...and its registry is the detail-off registry plus detail scopes.
  std::size_t extra = 0;
  for (const auto& [scope, data] : on.registry().scopes()) {
    if (scope.rfind("hist:", 0) == 0 || scope.rfind("timeline:", 0) == 0) {
      ++extra;
      continue;
    }
    const auto& off_scopes = off1.registry().scopes();
    auto it = off_scopes.find(scope);
    ASSERT_NE(it, off_scopes.end()) << "unexpected new scope: " << scope;
    EXPECT_TRUE(it->second.counters == data.counters &&
                it->second.values == data.values)
        << "detail mode perturbed scope " << scope;
  }
  EXPECT_GT(extra, 0u);
  EXPECT_EQ(on.registry().scopes().size() - extra,
            off1.registry().scopes().size());
}

TEST(ObsEnzo, TraceAndReportAreByteIdenticalAcrossRuns) {
  obs::Collector a, b;
  run_enzo_io(tiny_spec(Backend::kMpiIo, &a));
  run_enzo_io(tiny_spec(Backend::kMpiIo, &b));
  EXPECT_EQ(obs::chrome_trace_json(a), obs::chrome_trace_json(b));
  EXPECT_EQ(obs::report_text(obs::build_report(a)),
            obs::report_text(obs::build_report(b)));
  EXPECT_EQ(a.registry().to_json(2), b.registry().to_json(2));
}

}  // namespace
}  // namespace paramrio::bench
