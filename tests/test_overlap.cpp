// Overlapped I/O (Hints::overlap): the engine's shadow-clock deferral, the
// nonblocking and split-collective File interfaces, the pipelined two-phase
// windows, and read prefetching.
//
// The headline properties:
//  * content: split ≡ blocking ≡ independent, byte for byte, overlap on or
//    off, under randomized interleaved access patterns — and the checker
//    stays clean;
//  * time: overlap can only help (saved time is accounted, never invented);
//  * faults: a retrying in-flight op converges exactly like a blocking one.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "check/io_checker.hpp"
#include "fault/fault.hpp"
#include "mpi/io/file.hpp"
#include "net/network.hpp"
#include "pfs/local_fs.hpp"
#include "pfs/striped_fs.hpp"
#include "sim/engine.hpp"

namespace paramrio::mpi::io {
namespace {

sim::Engine::Options eopts(int n) {
  sim::Engine::Options o;
  o.nprocs = n;
  return o;
}

RuntimeParams rparams(int n) {
  RuntimeParams p;
  p.nprocs = n;
  return p;
}

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  return v;
}

// ---------------------------------------------------------------------------
// Engine deferral primitives.
// ---------------------------------------------------------------------------

TEST(Deferral, ShadowClockRunsAheadWithoutCharging) {
  sim::Engine::run(eopts(1), [&](sim::Proc& p) {
    p.advance(1.0, sim::TimeCategory::kCpu);
    const double t0 = p.now();
    const double cpu0 = p.stats().cpu_time;
    const double io0 = p.stats().io_time;
    p.begin_deferred();  // lint:allow(deferred-raii) exercises the raw API
    EXPECT_TRUE(p.deferred());
    p.advance(0.5, sim::TimeCategory::kIo);
    EXPECT_DOUBLE_EQ(p.now(), t0 + 0.5);  // shadow clock visible
    p.clock_at_least(t0 + 2.0, sim::TimeCategory::kIo);
    EXPECT_DOUBLE_EQ(p.now(), t0 + 2.0);
    const double completion = p.end_deferred();  // lint:allow(deferred-raii)
    EXPECT_DOUBLE_EQ(completion, t0 + 2.0);
    // The real clock and the accounting never moved.
    EXPECT_FALSE(p.deferred());
    EXPECT_DOUBLE_EQ(p.now(), t0);
    EXPECT_DOUBLE_EQ(p.stats().cpu_time, cpu0);
    EXPECT_DOUBLE_EQ(p.stats().io_time, io0);
  });
}

TEST(Deferral, NestedBeginAndStrayEndAreRejected) {
  sim::Engine::run(eopts(1), [&](sim::Proc& p) {
    // lint:allow(deferred-raii)
    EXPECT_THROW(p.end_deferred(), LogicError);
    p.begin_deferred();  // lint:allow(deferred-raii)
    // lint:allow(deferred-raii)
    EXPECT_THROW(p.begin_deferred(), LogicError);
    p.end_deferred();  // lint:allow(deferred-raii)
  });
}

// ---------------------------------------------------------------------------
// Nonblocking independent ops.
// ---------------------------------------------------------------------------

TEST(OverlapIndependent, IwriteThenWaitMatchesBlockingContent) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    Hints h;
    h.overlap = true;
    File f(c, fs, "a", pfs::OpenMode::kCreate, h);
    auto data = pattern(64 * KiB);
    Request r = f.iwrite_at(100, data);
    EXPECT_TRUE(r.active());
    // Computing while the write is in flight is what earns saved time; an
    // immediate wait would hide nothing.
    sim::current_proc().advance(0.01, sim::TimeCategory::kCpu);
    f.wait(r);
    EXPECT_FALSE(r.active());
    std::vector<std::byte> out(data.size());
    f.read_at(100, out);
    EXPECT_EQ(out, data);
    EXPECT_GT(f.stats().overlap_saved_time, 0.0);  // wait came after issue
    f.close();
  });
}

TEST(OverlapIndependent, OverlapHidesIoBehindCompute) {
  // Same workload twice: write 1 MiB then compute 50 ms.  Synchronously the
  // times add; in flight the compute hides part of the write.
  auto elapsed = [&](bool overlap) {
    pfs::LocalFs fs(pfs::LocalFsParams{});
    Runtime rt(rparams(1));
    double t = 0.0;
    rt.run([&](Comm& c) {
      Hints h;
      h.overlap = overlap;
      File f(c, fs, "a", pfs::OpenMode::kCreate, h);
      auto data = pattern(1 * MiB);
      const double t0 = sim::current_proc().now();
      Request r = f.iwrite_at(0, data);
      sim::current_proc().advance(0.05, sim::TimeCategory::kCpu);
      f.wait(r);
      t = sim::current_proc().now() - t0;
      f.close();
    });
    return t;
  };
  const double sync_t = elapsed(false);
  const double async_t = elapsed(true);
  EXPECT_LT(async_t, sync_t);
}

TEST(OverlapIndependent, CloseDrainsUnwaitedRequests) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    Hints h;
    h.overlap = true;
    File f(c, fs, "a", pfs::OpenMode::kCreate, h);
    auto data = pattern(256 * KiB);
    // lint:allow(missing-wait) — the point is that close() drains it
    Request r = f.iwrite_at(0, data);  // never waited
    (void)r;
    const double before = sim::current_proc().now();
    f.close();
    // close() charged the in-flight completion.
    EXPECT_GT(sim::current_proc().now(), before);
  });
  auto back = pattern(256 * KiB);
  std::vector<std::byte> out(back.size());
  fs.store().read_at("a", 0, out);
  EXPECT_EQ(out, back);
}

// ---------------------------------------------------------------------------
// Prefetch.
// ---------------------------------------------------------------------------

TEST(Prefetch, HitMissAndInvalidationAccounting) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    Hints h;
    h.overlap = true;
    auto data = pattern(4096);
    {
      File w(c, fs, "a", pfs::OpenMode::kCreate, h);
      w.write_at(0, data);
      w.close();
    }
    File f(c, fs, "a", pfs::OpenMode::kRead, h);

    // Exact match: hit, correct bytes.
    f.prefetch(0, 100);
    std::vector<std::byte> out(100);
    f.read_at(0, out);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
    EXPECT_EQ(f.stats().prefetch_hits, 1u);
    EXPECT_EQ(f.stats().prefetch_misses, 0u);

    // Partial overlap: miss, still correct bytes from the file.
    f.prefetch(200, 50);
    out.resize(20);
    f.read_at(210, out);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + 210));
    EXPECT_EQ(f.stats().prefetch_hits, 1u);
    EXPECT_EQ(f.stats().prefetch_misses, 1u);
    f.close();
  });
  // Writer-side invalidation and the drop-at-close path.
  rt.run([&](Comm& c) {
    Hints h;
    h.overlap = true;
    File f(c, fs, "a", pfs::OpenMode::kReadWrite, h);
    f.prefetch(300, 50);
    f.write_at(310, pattern(10, 9));  // intersects the prefetched range
    EXPECT_EQ(f.stats().prefetch_misses, 1u);
    f.prefetch(1000, 64);  // never consumed
    f.close();
    EXPECT_EQ(f.stats().prefetch_misses, 2u);
  });
}

TEST(Prefetch, NoOpWhenOverlapOff) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    File f(c, fs, "a", pfs::OpenMode::kCreate);
    f.write_at(0, pattern(512));
    f.prefetch(0, 512);
    std::vector<std::byte> out(512);
    f.read_at(0, out);
    EXPECT_EQ(f.stats().prefetch_hits, 0u);
    EXPECT_EQ(f.stats().prefetch_misses, 0u);
    f.close();
  });
}

// ---------------------------------------------------------------------------
// Split collectives and pipelined two-phase: content equivalence.
// ---------------------------------------------------------------------------

struct SweepOutcome {
  std::vector<std::byte> bytes;
  std::uint64_t split = 0, windows = 0, overlap_windows = 0;
  bool checker_clean = false;
};

/// Write a (n × n) interleaved middle-dim partition with the given method,
/// return the landed bytes plus counters.  method: 0 = blocking collective,
/// 1 = split collective (with comm between begin and end), 2 = independent.
SweepOutcome run_write_sweep(int method, bool overlap, unsigned seed) {
  const int p = 4;
  const std::uint64_t n = 16, elem = 8;
  net::NetworkParams np;
  pfs::StripedFsParams sp;
  sp.stripe_size = 64 * KiB;
  sp.n_io_nodes = 4;
  net::Network nw(np, p, sp.n_io_nodes);
  pfs::StripedFs fs(sp, nw);
  check::IoChecker checker;
  fs.attach_observer(&checker);
  RuntimeParams rp = rparams(p);
  rp.extra_fabric_nodes = sp.n_io_nodes;
  Runtime rt(rp);
  std::vector<FileStats> stats(p);
  rt.run([&](Comm& c) {
    Hints h;
    h.overlap = overlap;
    h.cb_buffer_size = 8 * KiB;  // force several two-phase windows
    File f(c, fs, "a", pfs::OpenMode::kCreate, h);
    // Deterministic per-seed row partition, identical across methods.
    std::mt19937 gen(seed);
    std::vector<std::uint64_t> cut(static_cast<std::size_t>(p - 1));
    for (auto& x : cut) x = gen() % n;
    cut.push_back(0);
    cut.push_back(n);
    std::sort(cut.begin(), cut.end());
    const std::uint64_t ys = cut[static_cast<std::size_t>(c.rank())];
    const std::uint64_t yc =
        cut[static_cast<std::size_t>(c.rank()) + 1] - ys;
    std::vector<std::byte> buf(n * yc * n * elem,
                               static_cast<std::byte>(c.rank() + 1));
    if (yc > 0) {
      f.set_view(0,
                 Datatype::subarray({n, n, n}, {n, yc, n}, {0, ys, 0}, elem));
    } else {
      f.set_view(0);
    }
    switch (method) {
      case 0:
        f.write_at_all(0, buf);
        break;
      case 1:
        f.write_at_all_begin(0, buf);
        // Unrelated comm between begin and end — what split exists for.
        c.allreduce_max(static_cast<std::uint64_t>(c.rank()));
        f.write_at_all_end();
        break;
      default:
        f.write_at(0, buf);
        c.barrier();
        break;
    }
    stats[static_cast<std::size_t>(c.rank())] = f.stats();
    f.close();
  });
  SweepOutcome o;
  o.bytes.resize(fs.store().size("a"));
  fs.store().read_at("a", 0, o.bytes);
  for (const FileStats& s : stats) {
    o.split += s.split_collectives;
    o.windows += s.two_phase_windows;
    o.overlap_windows += s.overlap_windows;
  }
  o.checker_clean = checker.analyze(&fs.store()).clean();
  return o;
}

TEST(SplitCollective, RandomizedSweepSplitEqualsBlockingEqualsIndependent) {
  for (unsigned seed : {1u, 7u, 23u}) {
    SweepOutcome blocking_off = run_write_sweep(0, false, seed);
    SweepOutcome blocking_on = run_write_sweep(0, true, seed);
    SweepOutcome split_on = run_write_sweep(1, true, seed);
    SweepOutcome split_off = run_write_sweep(1, false, seed);
    SweepOutcome indep = run_write_sweep(2, true, seed);
    // Byte-for-byte identity across every method and overlap setting.
    EXPECT_EQ(blocking_off.bytes, blocking_on.bytes) << "seed " << seed;
    EXPECT_EQ(blocking_off.bytes, split_on.bytes) << "seed " << seed;
    EXPECT_EQ(blocking_off.bytes, split_off.bytes) << "seed " << seed;
    EXPECT_EQ(blocking_off.bytes, indep.bytes) << "seed " << seed;
    // The checker audits every variant clean.
    EXPECT_TRUE(blocking_off.checker_clean);
    EXPECT_TRUE(blocking_on.checker_clean);
    EXPECT_TRUE(split_on.checker_clean);
    EXPECT_TRUE(split_off.checker_clean);
    EXPECT_TRUE(indep.checker_clean);
    // Split bookkeeping: one begin/end per rank, windows pipelined only
    // when overlap is on.
    EXPECT_EQ(split_on.split, 4u);
    EXPECT_EQ(split_off.split, 4u);
    EXPECT_EQ(blocking_off.overlap_windows, 0u);
    EXPECT_GT(blocking_on.overlap_windows, 0u);
    EXPECT_EQ(blocking_on.overlap_windows, blocking_on.windows);
  }
}

TEST(SplitCollective, ReadMatchesBlockingAndPrefetchedIndependent) {
  const int p = 4;
  const std::uint64_t n = 16, elem = 8;
  const std::uint64_t total = n * n * n * elem;
  auto whole = pattern(total, 3);
  auto run_read = [&](int method, bool overlap) {
    net::NetworkParams np;
    pfs::StripedFsParams sp;
    sp.stripe_size = 64 * KiB;
    sp.n_io_nodes = 4;
    net::Network nw(np, p, sp.n_io_nodes);
    pfs::StripedFs fs(sp, nw);
    RuntimeParams rp = rparams(p);
    rp.extra_fabric_nodes = sp.n_io_nodes;
    Runtime rt(rp);
    std::vector<std::vector<std::byte>> got(p);
    rt.run([&](Comm& c) {
      Hints h;
      h.overlap = overlap;
      h.cb_buffer_size = 8 * KiB;
      if (c.rank() == 0) {
        File w(c, fs, "a", pfs::OpenMode::kCreate, h);
        w.write_at(0, whole);
        w.close();
      } else {
        File w(c, fs, "a", pfs::OpenMode::kCreate, h);
        w.close();
      }
      File f(c, fs, "a", pfs::OpenMode::kRead, h);
      const std::uint64_t yc = n / static_cast<std::uint64_t>(p);
      const std::uint64_t ys = yc * static_cast<std::uint64_t>(c.rank());
      f.set_view(0,
                 Datatype::subarray({n, n, n}, {n, yc, n}, {0, ys, 0}, elem));
      std::vector<std::byte> buf(n * yc * n * elem);
      switch (method) {
        case 0:
          f.read_at_all(0, buf);
          break;
        case 1:
          f.read_at_all_begin(0, buf);
          c.barrier();
          f.read_at_all_end();
          break;
        default:
          f.prefetch(0, buf.size());
          f.read_at(0, buf);
          break;
      }
      got[static_cast<std::size_t>(c.rank())] = std::move(buf);
      f.close();
    });
    return got;
  };
  auto baseline = run_read(0, false);
  for (int method : {0, 1, 2}) {
    auto got = run_read(method, true);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)],
                baseline[static_cast<std::size_t>(r)])
          << "method " << method << " rank " << r;
    }
  }
}

TEST(SplitCollective, ZeroLengthParticipationCompletes) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(2));
  rt.run([&](Comm& c) {
    Hints h;
    h.overlap = true;
    File f(c, fs, "a", pfs::OpenMode::kCreate, h);
    auto data = pattern(4096, 5);
    if (c.rank() == 0) {
      f.write_at_all_begin(0, data);
    } else {
      f.write_at_all_begin(0, {});  // zero-length: must still complete
    }
    f.write_at_all_end();
    EXPECT_EQ(f.stats().split_collectives, 1u);

    std::vector<std::byte> out(c.rank() == 0 ? 4096 : 0);
    if (c.rank() == 0) {
      f.read_at_all_begin(0, out);
    } else {
      f.read_at_all_begin(0, {});
    }
    f.read_at_all_end();
    if (c.rank() == 0) {
      EXPECT_EQ(out, data);
    }
    f.close();
  });
}

TEST(SplitCollective, SecondBeginWithoutEndIsRejected) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    Hints h;
    h.overlap = true;
    File f(c, fs, "a", pfs::OpenMode::kCreate, h);
    auto data = pattern(128);
    f.write_at_all_begin(0, data);
    EXPECT_THROW(f.write_at_all_begin(0, data), LogicError);
    EXPECT_THROW(f.write_at_all(0, data), LogicError);
    f.write_at_all_end();
    EXPECT_THROW(f.write_at_all_end(), LogicError);
    f.close();
  });
}

// ---------------------------------------------------------------------------
// Hints edge case: cb_buffer_size below the stripe size must not produce
// zero-byte windows in either domain mode.
// ---------------------------------------------------------------------------

TEST(HintsEdge, CbBufferSmallerThanStripeStillMovesEveryByte) {
  const int p = 4;
  const std::uint64_t n = 16, elem = 8;
  for (std::uint64_t cb_align : {Hints::kCbAlignAuto, std::uint64_t{64 * KiB}}) {
    net::NetworkParams np;
    pfs::StripedFsParams sp;
    sp.stripe_size = 64 * KiB;
    sp.n_io_nodes = 4;
    net::Network nw(np, p, sp.n_io_nodes);
    pfs::StripedFs fs(sp, nw);
    RuntimeParams rp = rparams(p);
    rp.extra_fabric_nodes = sp.n_io_nodes;
    Runtime rt(rp);
    std::vector<FileStats> stats(p);
    rt.run([&](Comm& c) {
      Hints h;
      h.overlap = true;
      h.cb_align = cb_align;
      h.cb_buffer_size = 2 * KiB;  // far below the 64 KiB stripe
      File f(c, fs, "a", pfs::OpenMode::kCreate, h);
      const std::uint64_t yc = n / static_cast<std::uint64_t>(p);
      const std::uint64_t ys = yc * static_cast<std::uint64_t>(c.rank());
      f.set_view(0,
                 Datatype::subarray({n, n, n}, {n, yc, n}, {0, ys, 0}, elem));
      std::vector<std::byte> buf(n * yc * n * elem,
                                 static_cast<std::byte>(c.rank() + 1));
      f.write_at_all(0, buf);
      stats[static_cast<std::size_t>(c.rank())] = f.stats();
      f.close();
    });
    std::uint64_t windows = 0, overlapped = 0;
    for (const FileStats& s : stats) {
      windows += s.two_phase_windows;
      overlapped += s.overlap_windows;
    }
    // Every counted window moved bytes (a zero-byte window would be counted
    // but ship nothing — caught by the byte audit below), and every one was
    // pipelined.
    EXPECT_GT(windows, 0u);
    EXPECT_EQ(overlapped, windows);
    std::vector<std::byte> all(n * n * n * elem);
    fs.store().read_at("a", 0, all);
    const std::uint64_t rows_per = n / static_cast<std::uint64_t>(p);
    for (std::uint64_t z = 0; z < n; ++z) {
      for (std::uint64_t y = 0; y < n; ++y) {
        const auto want =
            static_cast<std::byte>(y / rows_per + 1);
        const std::uint64_t row = (z * n + y) * n * elem;
        for (std::uint64_t i = 0; i < n * elem; ++i) {
          ASSERT_EQ(all[row + i], want) << "z=" << z << " y=" << y;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Faults: a retrying in-flight op converges like a blocking one.
// ---------------------------------------------------------------------------

TEST(OverlapFaults, InFlightTransientErrorsRetryAndConverge) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  fault::FaultPlan plan;
  fault::FaultSpec s;
  s.kind = fault::FaultKind::kTransientError;
  s.max_faults = 3;  // deterministic: first three attempts fail, then pass
  plan.specs.push_back(s);
  fault::Injector inj(plan);
  fs.attach_fault_hook(&inj);

  Runtime rt(rparams(1));
  std::vector<std::byte> data = pattern(128 * KiB, 11);
  FileStats stats;
  rt.run([&](Comm& c) {
    Hints h;
    h.overlap = true;
    h.retry.max_retries = 8;
    h.retry.backoff_base = 1e-4;
    File f(c, fs, "a", pfs::OpenMode::kCreate, h);
    Request r = f.iwrite_at(0, data);
    sim::current_proc().advance(0.01, sim::TimeCategory::kCpu);
    f.wait(r);
    stats = f.stats();
    f.close();
  });
  // Faults fired and were absorbed in flight (backoff on the shadow clock).
  EXPECT_GT(stats.retry.transient_errors, 0u);
  EXPECT_GT(stats.retry.retries, 0u);
  EXPECT_GT(stats.retry.backoff_seconds, 0.0);
  // The landed bytes converged to exactly the fault-free content.
  std::vector<std::byte> out(data.size());
  fs.store().read_at("a", 0, out);
  EXPECT_EQ(out, data);
}

// ---------------------------------------------------------------------------
// View-flatten cache.
// ---------------------------------------------------------------------------

TEST(ViewFlattenCache, RepeatedSubarrayViewsHit) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    File f(c, fs, "a", pfs::OpenMode::kCreate);
    const std::uint64_t n = 8, elem = 8;
    const std::uint64_t field = n * n * n * elem;
    auto data = pattern(n * 4 * n * elem, 2);
    // The ENZO shape: the same subarray filetype installed at a different
    // displacement per field — the flattening is computed once.
    for (int fi = 0; fi < 4; ++fi) {
      f.set_view(static_cast<std::uint64_t>(fi) * field,
                 Datatype::subarray({n, n, n}, {n, 4, n}, {0, 4, 0}, elem));
      f.write_at(0, data);
    }
    EXPECT_EQ(f.stats().view_flatten_cache_hits, 3u);
    // Same range read back through the same view: hits again, same bytes.
    for (int fi = 0; fi < 4; ++fi) {
      f.set_view(static_cast<std::uint64_t>(fi) * field,
                 Datatype::subarray({n, n, n}, {n, 4, n}, {0, 4, 0}, elem));
      std::vector<std::byte> out(data.size());
      f.read_at(0, out);
      EXPECT_EQ(out, data);
    }
    EXPECT_EQ(f.stats().view_flatten_cache_hits, 7u);
    // A different range is a clean miss, not a stale reuse.
    std::vector<std::byte> head(n * elem);
    f.read_at(0, head);
    EXPECT_TRUE(std::equal(head.begin(), head.end(), data.begin()));
    EXPECT_EQ(f.stats().view_flatten_cache_hits, 7u);
    f.close();
  });
}

}  // namespace
}  // namespace paramrio::mpi::io
