// Unit tests for the fault-injection library: deterministic replay, spec
// matching and scheduling, budget bounds, server-outage windows, and the
// network drop/duplicate model (which must never lose a payload).
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "obs/registry.hpp"
#include "pfs/local_fs.hpp"
#include "sim/engine.hpp"

namespace paramrio::fault {
namespace {

using Action = IoFaultAction::Kind;

/// Feed a synthetic op stream and record the actions taken.
std::vector<Action> drive(Injector& inj, int n_ops, std::uint64_t bytes = 64) {
  std::vector<Action> out;
  for (int i = 0; i < n_ops; ++i) {
    out.push_back(inj.on_io(/*rank=*/i % 4, /*now=*/0.0, /*is_write=*/true,
                            "file", static_cast<std::uint64_t>(i) * bytes,
                            bytes, /*server=*/-1)
                      .kind);
  }
  return out;
}

TEST(Injector, SamePlanSameStreamSameFaults) {
  FaultPlan plan;
  plan.seed = 42;
  FaultSpec s;
  s.kind = FaultKind::kTransientError;
  s.probability = 0.3;
  plan.specs.push_back(s);

  Injector a(plan), b(plan);
  EXPECT_EQ(drive(a, 200), drive(b, 200));
  EXPECT_EQ(a.counters().injected_total(), b.counters().injected_total());
  EXPECT_GT(a.counters().injected_total(), 0u);
  EXPECT_LT(a.counters().injected_total(), 200u);
}

TEST(Injector, SeedChangesTheDraw) {
  FaultPlan p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  FaultSpec s;
  s.kind = FaultKind::kTransientError;
  s.probability = 0.3;
  p1.specs.push_back(s);
  p2.specs.push_back(s);
  Injector a(p1), b(p2);
  EXPECT_NE(drive(a, 200), drive(b, 200));
}

TEST(Injector, MatchersFilterOps) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kTransientError;
  s.rank = 2;
  s.path_substr = "dump";
  s.match_reads = false;
  s.offset_lo = 100;
  s.offset_hi = 200;
  plan.specs.push_back(s);
  Injector inj(plan);

  auto fire = [&](int rank, bool is_write, const std::string& path,
                  std::uint64_t off) {
    return inj.on_io(rank, 0.0, is_write, path, off, 64, -1).kind ==
           Action::kTransientError;
  };
  EXPECT_TRUE(fire(2, true, "dump.enzo", 150));
  EXPECT_FALSE(fire(1, true, "dump.enzo", 150));   // wrong rank
  EXPECT_FALSE(fire(2, true, "other", 150));       // wrong path
  EXPECT_FALSE(fire(2, false, "dump.enzo", 150));  // reads not matched
  EXPECT_FALSE(fire(2, true, "dump.enzo", 50));    // below offset_lo
  EXPECT_FALSE(fire(2, true, "dump.enzo", 200));   // at offset_hi (exclusive)
}

TEST(Injector, OpWindowAndMaxFaults) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kTransientError;
  s.first_op = 5;
  s.last_op = 15;
  s.max_faults = 3;
  plan.specs.push_back(s);
  Injector inj(plan);

  auto actions = drive(inj, 20);
  // Ops 0..4 pass (before the window); 5,6,7 fire (budget 3); rest pass.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(actions[i], Action::kPass) << i;
  for (int i = 5; i < 8; ++i) {
    EXPECT_EQ(actions[i], Action::kTransientError) << i;
  }
  for (int i = 8; i < 20; ++i) EXPECT_EQ(actions[i], Action::kPass) << i;
  EXPECT_EQ(inj.counters().count(FaultKind::kTransientError), 3u);
}

TEST(Injector, MaxConsecutiveLetsARetriedOpThrough) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kTransientError;
  s.max_consecutive = 2;
  plan.specs.push_back(s);
  Injector inj(plan);

  // The same op retried forever: faulted twice, then let through once, then
  // faulted twice again...
  auto once = [&] {
    return inj.on_io(0, 0.0, true, "f", 0, 64, -1).kind ==
           Action::kTransientError;
  };
  EXPECT_TRUE(once());
  EXPECT_TRUE(once());
  EXPECT_FALSE(once());  // breaker: bounded retries always converge
  EXPECT_TRUE(once());
}

TEST(Injector, ShortTransferIsAProperPrefix) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kShortWrite;
  s.short_fraction = 0.5;
  plan.specs.push_back(s);
  Injector inj(plan);

  auto a = inj.on_io(0, 0.0, true, "f", 0, 100, -1);
  EXPECT_EQ(a.kind, Action::kShort);
  EXPECT_EQ(a.transfer, 50u);
  // A 1-byte op cannot be shorted.
  EXPECT_EQ(inj.on_io(0, 0.0, true, "f", 0, 1, -1).kind, Action::kPass);
  // Reads are untouched by a kShortWrite spec.
  EXPECT_EQ(inj.on_io(0, 0.0, false, "f", 0, 100, -1).kind, Action::kPass);
  // Extreme fractions still land in [1, bytes-1].
  plan.specs[0].short_fraction = 0.0;
  Injector lo(plan);
  EXPECT_EQ(lo.on_io(0, 0.0, true, "f", 0, 100, -1).transfer, 1u);
  plan.specs[0].short_fraction = 1.0;
  Injector hi(plan);
  EXPECT_EQ(hi.on_io(0, 0.0, true, "f", 0, 100, -1).transfer, 99u);
}

TEST(Injector, ServerDownWindowGatesDegraded) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kServerDown;
  s.after_time = 1.0;
  s.until_time = 2.0;
  plan.specs.push_back(s);
  Injector inj(plan);

  EXPECT_FALSE(inj.degraded(0.5));
  EXPECT_TRUE(inj.degraded(1.0));
  EXPECT_TRUE(inj.degraded(1.999));
  EXPECT_FALSE(inj.degraded(2.0));
  // Ops inside the window fail as transient errors; outside they pass.
  EXPECT_EQ(inj.on_io(0, 1.5, true, "f", 0, 64, -1).kind,
            Action::kTransientError);
  EXPECT_EQ(inj.on_io(0, 2.5, true, "f", 0, 64, -1).kind, Action::kPass);
  // Disarmed injector reports healthy.
  inj.set_enabled(false);
  EXPECT_FALSE(inj.degraded(1.5));
}

TEST(Injector, StallCarriesItsDelay) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kStall;
  s.stall_seconds = 0.25;
  plan.specs.push_back(s);
  Injector inj(plan);
  auto a = inj.on_io(0, 0.0, true, "f", 0, 64, -1);
  EXPECT_EQ(a.kind, Action::kStall);
  EXPECT_DOUBLE_EQ(a.stall_seconds, 0.25);
}

TEST(Injector, FirstFiringSpecWins) {
  FaultPlan plan;
  FaultSpec stall;
  stall.kind = FaultKind::kStall;
  stall.stall_seconds = 0.1;
  FaultSpec eio;
  eio.kind = FaultKind::kTransientError;
  plan.specs.push_back(stall);
  plan.specs.push_back(eio);
  Injector inj(plan);
  EXPECT_EQ(inj.on_io(0, 0.0, true, "f", 0, 64, -1).kind, Action::kStall);
  EXPECT_EQ(inj.counters().count(FaultKind::kTransientError), 0u);
}

TEST(Injector, DisabledCountsNothing) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kTransientError;
  plan.specs.push_back(s);
  Injector inj(plan);
  inj.set_enabled(false);
  EXPECT_EQ(drive(inj, 10), std::vector<Action>(10, Action::kPass));
  EXPECT_EQ(inj.counters().io_ops, 0u);
  EXPECT_EQ(inj.counters().injected_total(), 0u);
}

TEST(Injector, ExportCountersPublishesFiredKindsOnly) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kShortWrite;
  s.max_faults = 2;
  plan.specs.push_back(s);
  Injector inj(plan);
  drive(inj, 5);

  obs::MetricsRegistry reg;
  inj.export_counters(reg);
  EXPECT_EQ(reg.get("fault", "io_ops_seen"), 5u);
  EXPECT_EQ(reg.get("fault", "injected_total"), 2u);
  EXPECT_EQ(reg.get("fault", "injected_short_write"), 2u);
  // Kinds that never fired leave no counter behind (clean-run output stays
  // minimal and byte-identical).
  EXPECT_EQ(reg.scopes().at("fault").counters.count("injected_crash"), 0u);
}

// ---------------------------------------------------------------------------
// Network faults through the real runtime: drops and duplicates are timing
// faults — every payload is still delivered exactly once, so a collective-
// heavy program completes with correct results, just later.
// ---------------------------------------------------------------------------

mpi::RuntimeParams rparams(int n) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  return p;
}

TEST(NetFaults, DropsAndDupsKeepDeliveryExactlyOnce) {
  const int p = 4;
  FaultPlan plan;
  plan.seed = 9;
  FaultSpec drop;
  drop.kind = FaultKind::kMsgDrop;
  drop.probability = 0.2;
  drop.max_consecutive = 2;
  FaultSpec dup;
  dup.kind = FaultKind::kMsgDup;
  dup.probability = 0.2;
  plan.specs.push_back(drop);
  plan.specs.push_back(dup);
  Injector inj(plan);

  mpi::Runtime rt(rparams(p));
  rt.network().attach_fault_hook(&inj);
  rt.run([&](mpi::Comm& c) {
    for (int round = 0; round < 8; ++round) {
      std::uint64_t v = static_cast<std::uint64_t>(c.rank()) + 1;
      EXPECT_EQ(c.allreduce_max(v), static_cast<std::uint64_t>(p));
      c.barrier();
    }
  });
  rt.network().attach_fault_hook(nullptr);

  // Faults fired, the network counted them, and retransmissions cost bytes.
  EXPECT_GT(inj.counters().count(FaultKind::kMsgDrop), 0u);
  EXPECT_GT(inj.counters().count(FaultKind::kMsgDup), 0u);
  const net::NetworkCounters& nc = rt.network().counters();
  EXPECT_EQ(nc.msg_drops, inj.counters().count(FaultKind::kMsgDrop));
  EXPECT_EQ(nc.msg_dups, inj.counters().count(FaultKind::kMsgDup));
  EXPECT_GT(nc.retransmit_bytes, 0u);
}

TEST(NetFaults, DropsCostTimeNotCorrectness) {
  const int p = 4;
  auto makespan = [&](Injector* inj) {
    mpi::Runtime rt(rparams(p));
    if (inj) rt.network().attach_fault_hook(inj);
    auto res = rt.run([&](mpi::Comm& c) {
      for (int round = 0; round < 8; ++round) c.barrier();
    });
    return res.makespan;
  };

  FaultPlan plan;
  plan.seed = 3;
  FaultSpec drop;
  drop.kind = FaultKind::kMsgDrop;
  drop.probability = 0.5;
  drop.max_consecutive = 2;
  plan.specs.push_back(drop);
  Injector inj(plan);

  double clean = makespan(nullptr);
  double faulted = makespan(&inj);
  EXPECT_GT(inj.counters().count(FaultKind::kMsgDrop), 0u);
  EXPECT_GT(faulted, clean);
}

}  // namespace
}  // namespace paramrio::fault
