// Unit tests for the conservative virtual-time engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace paramrio::sim {
namespace {

Engine::Options opts(int n) {
  Engine::Options o;
  o.nprocs = n;
  return o;
}

/// Classic lowest-rank tie order, immune to a suite-wide
/// PARAMRIO_SCHED_SEED — for the tests that document that exact order.
Engine::Options classic_opts(int n) {
  Engine::Options o = opts(n);
  o.env_perturb = false;
  return o;
}

TEST(Engine, SingleProcAdvances) {
  auto r = Engine::run(opts(1), [](Proc& p) {
    p.advance(1.5);
    p.advance(0.5, TimeCategory::kIo);
  });
  EXPECT_DOUBLE_EQ(r.finish_times[0], 2.0);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_DOUBLE_EQ(r.stats[0].cpu_time, 1.5);
  EXPECT_DOUBLE_EQ(r.stats[0].io_time, 0.5);
}

TEST(Engine, ClockAtLeastOnlyMovesForward) {
  auto r = Engine::run(opts(1), [](Proc& p) {
    p.advance(3.0);
    p.clock_at_least(1.0, TimeCategory::kComm);  // no-op
    EXPECT_DOUBLE_EQ(p.now(), 3.0);
    p.clock_at_least(4.0, TimeCategory::kComm);
    EXPECT_DOUBLE_EQ(p.now(), 4.0);
  });
  EXPECT_DOUBLE_EQ(r.stats[0].comm_time, 1.0);
}

TEST(Engine, NegativeAdvanceThrows) {
  EXPECT_THROW(
      Engine::run(opts(1), [](Proc& p) { p.advance(-1.0); }), LogicError);
}

TEST(Engine, ExceptionInBodyPropagates) {
  EXPECT_THROW(Engine::run(opts(4),
                           [](Proc& p) {
                             p.advance(0.1);
                             if (p.rank() == 2) throw IoError("boom");
                             p.advance(10.0);
                           }),
               IoError);
}

TEST(Engine, ExecutionIsSerializedAndDeterministic) {
  // Record the order in which ranks execute their events; with the
  // min-clock scheduler this order is a pure function of the virtual times.
  std::vector<int> order;
  Engine::run(classic_opts(3), [&](Proc& p) {
    // rank 0 events at t=1,2,3; rank 1 at t=2,4,6; rank 2 at t=3,6,9
    for (int i = 0; i < 3; ++i) {
      p.advance(static_cast<double>(p.rank() + 1));
      order.push_back(p.rank());
    }
  });
  // Expected event completion order (time, rank):
  // (1,0)(2,0)(2,1)(3,0)(3,2)(4,1)(6,1)(6,2)(9,2)
  std::vector<int> expected = {0, 0, 1, 0, 2, 1, 1, 2, 2};
  EXPECT_EQ(order, expected);
}

TEST(Engine, DeterministicAcrossRepeatedRuns) {
  auto run_once = [] {
    std::vector<int> order;
    Engine::run(opts(5), [&](Proc& p) {
      for (int i = 0; i < 10; ++i) {
        p.advance(p.rng().next_double() + 0.01);
        order.push_back(p.rank());
      }
    });
    return order;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Engine, PerRankRngStreamsDiffer) {
  std::vector<std::uint64_t> first(3);
  Engine::run(opts(3), [&](Proc& p) {
    first[static_cast<std::size_t>(p.rank())] = p.rng().next_u64();
  });
  EXPECT_NE(first[0], first[1]);
  EXPECT_NE(first[1], first[2]);
}

TEST(Engine, SeedChangesRngStreams) {
  Engine::Options a = opts(1), b = opts(1);
  b.seed = 999;
  std::uint64_t va = 0, vb = 0;
  Engine::run(a, [&](Proc& p) { va = p.rng().next_u64(); });
  Engine::run(b, [&](Proc& p) { vb = p.rng().next_u64(); });
  EXPECT_NE(va, vb);
}

TEST(Engine, BlockedForeverIsDeadlock) {
  EXPECT_THROW(Engine::run(opts(2),
                           [](Proc& p) {
                             if (p.rank() == 0) p.block();  // nobody signals
                           }),
               DeadlockError);
}

TEST(Engine, AllBlockedIsDeadlock) {
  EXPECT_THROW(Engine::run(opts(3), [](Proc& p) { p.block(); }),
               DeadlockError);
}

TEST(Engine, SignalWakesBlockedProc) {
  // Rank 0 blocks; rank 1 advances then signals it awake.
  std::vector<double> woke(2, -1.0);
  Engine::run(opts(2), [&](Proc& p) {
    if (p.rank() == 0) {
      p.block();
      woke[0] = p.now();
    } else {
      p.advance(5.0);
      p.engine().signal(0);
      p.advance(1.0);
    }
  });
  // Rank 0's clock never advanced — blocking does not consume virtual time;
  // the wake simply makes it runnable again at its own clock.
  EXPECT_DOUBLE_EQ(woke[0], 0.0);
}

TEST(Engine, CurrentProcAccessor) {
  EXPECT_FALSE(in_simulation());
  EXPECT_THROW(current_proc(), LogicError);
  Engine::run(opts(2), [](Proc& p) {
    EXPECT_TRUE(in_simulation());
    EXPECT_EQ(&current_proc(), &p);
  });
  EXPECT_FALSE(in_simulation());
}

TEST(Timeline, FifoQueueing) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.acquire(0.0, 2.0), 2.0);   // idle: starts immediately
  EXPECT_DOUBLE_EQ(tl.acquire(1.0, 2.0), 4.0);   // queued behind first
  EXPECT_DOUBLE_EQ(tl.acquire(10.0, 2.0), 12.0); // idle again
  tl.reset();
  EXPECT_DOUBLE_EQ(tl.acquire(0.0, 1.0), 1.0);
}

TEST(Engine, SharedTimelineSerializesContendingProcs) {
  // 4 procs each request 1s of service on the same resource at t=0.
  Timeline disk;
  auto r = Engine::run(classic_opts(4), [&](Proc& p) {
    p.use_resource(disk, 1.0, TimeCategory::kIo);
  });
  // Served in rank order (deterministic tie-break): completions 1,2,3,4.
  EXPECT_DOUBLE_EQ(r.finish_times[0], 1.0);
  EXPECT_DOUBLE_EQ(r.finish_times[1], 2.0);
  EXPECT_DOUBLE_EQ(r.finish_times[2], 3.0);
  EXPECT_DOUBLE_EQ(r.finish_times[3], 4.0);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(Engine, IndependentTimelinesRunInParallel) {
  std::vector<Timeline> disks(4);
  auto r = Engine::run(opts(4), [&](Proc& p) {
    p.use_resource(disks[static_cast<std::size_t>(p.rank())], 1.0,
                   TimeCategory::kIo);
  });
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
}

TEST(Engine, ResourceArbitrationFollowsVirtualTime) {
  // Rank 1 reaches the disk at t=0.5, rank 0 at t=2.0: rank 1 must be
  // served first even though rank 0 has the lower rank id.
  Timeline disk;
  auto r = Engine::run(opts(2), [&](Proc& p) {
    p.advance(p.rank() == 0 ? 2.0 : 0.5);
    p.use_resource(disk, 1.0, TimeCategory::kIo);
  });
  EXPECT_DOUBLE_EQ(r.finish_times[1], 1.5);  // 0.5 + 1.0, no queueing
  EXPECT_DOUBLE_EQ(r.finish_times[0], 3.0);  // idle again by t=2.0
}

TEST(Engine, StatsAccumulateAcrossCategories) {
  auto r = Engine::run(opts(1), [](Proc& p) {
    p.advance(1.0, TimeCategory::kCpu);
    p.advance(2.0, TimeCategory::kComm);
    p.advance(3.0, TimeCategory::kIo);
    p.stats().bytes_sent += 100;
    p.stats().io_requests += 2;
  });
  EXPECT_DOUBLE_EQ(r.stats[0].cpu_time, 1.0);
  EXPECT_DOUBLE_EQ(r.stats[0].comm_time, 2.0);
  EXPECT_DOUBLE_EQ(r.stats[0].io_time, 3.0);
  EXPECT_EQ(r.stats[0].bytes_sent, 100u);
  EXPECT_EQ(r.stats[0].io_requests, 2u);
}

TEST(Engine, ZeroProcsRejected) {
  EXPECT_THROW(Engine::run(opts(0), [](Proc&) {}), LogicError);
}

TEST(Engine, ManyProcsComplete) {
  auto r = Engine::run(opts(64), [](Proc& p) {
    for (int i = 0; i < 5; ++i) p.advance(0.25);
  });
  for (double t : r.finish_times) EXPECT_DOUBLE_EQ(t, 1.25);
}


TEST(Engine, AbortWakesBlockedProcs) {
  // Rank 1 blocks forever; rank 0 throws.  The abort must unwind rank 1
  // rather than hang the run, and rank 0's error must surface.
  EXPECT_THROW(Engine::run(opts(3),
                           [](Proc& p) {
                             if (p.rank() == 1) p.block();
                             if (p.rank() == 0) {
                               p.advance(0.5);
                               throw IoError("rank 0 failed");
                             }
                             p.advance(1.0);
                           }),
               IoError);
}

TEST(Engine, SignalBeforeBlockIsNotLost) {
  // A signal delivered while the target is runnable is a no-op; the target
  // must still be able to block later and be woken by a subsequent signal.
  Engine::run(opts(2), [](Proc& p) {
    if (p.rank() == 1) {
      p.engine().signal(0);  // rank 0 is runnable: no-op
      p.advance(1.0);
      p.engine().signal(0);  // this one matters
    } else {
      p.advance(0.5);
      p.block();
      EXPECT_DOUBLE_EQ(p.now(), 0.5);
    }
  });
}

TEST(Timeline, RaiseLiftsTheHorizonMonotonically) {
  Timeline tl;
  tl.raise(5.0);
  EXPECT_DOUBLE_EQ(tl.next_free(), 5.0);
  tl.raise(3.0);  // never lowers
  EXPECT_DOUBLE_EQ(tl.next_free(), 5.0);
  EXPECT_DOUBLE_EQ(tl.acquire(0.0, 1.0), 6.0);  // queued behind the horizon
}

// ---- scheduler backends ----------------------------------------------------

Engine::Options backend_opts(int n, SchedBackend b) {
  Engine::Options o = opts(n);
  o.backend = b;
  o.env_perturb = false;
  return o;
}

/// Run the same mixed advance/block/signal workload on one backend and
/// return (execution order, finish times).
std::pair<std::vector<int>, std::vector<double>> backend_trace(
    SchedBackend b, std::uint64_t perturb) {
  Engine::Options o = backend_opts(6, b);
  o.perturb_seed = perturb;
  std::vector<int> order;
  auto r = Engine::run(o, [&](Proc& p) {
    for (int i = 0; i < 4; ++i) {
      p.advance(p.rng().next_double() + 0.01);
      order.push_back(p.rank());
      if (p.rank() == 3 && i == 1) {
        p.block();
        order.push_back(-3);  // resumption marker
      }
      if (p.rank() == 5 && i == 2) p.engine().signal(3);
    }
  });
  return {order, r.finish_times};
}

TEST(EngineBackends, FiberAndThreadRunsAreIdentical) {
  for (std::uint64_t perturb : {0ull, 1ull, 2ull}) {
    auto fib = backend_trace(SchedBackend::kFibers, perturb);
    auto thr = backend_trace(SchedBackend::kThreads, perturb);
    EXPECT_EQ(fib.first, thr.first) << "perturb=" << perturb;
    EXPECT_EQ(fib.second, thr.second) << "perturb=" << perturb;
  }
}

TEST(EngineBackends, TsanOrExplicitSelectionResolves) {
  Engine::Options o = opts(1);
  // kAuto resolves to something concrete; explicit choices are honoured
  // except under ThreadSanitizer, which pins kThreads (see docs/SCALING.md).
  EXPECT_NE(o.effective_backend(), SchedBackend::kAuto);
  o.backend = SchedBackend::kThreads;
  EXPECT_EQ(o.effective_backend(), SchedBackend::kThreads);
}

TEST(EngineBackends, FiberBackendScalesToManyProcs) {
  // Far beyond what one-thread-per-rank could sensibly run under a test:
  // 2048 fibers, each doing real work, in one scheduler thread.
  Engine::Options o = backend_opts(2048, SchedBackend::kFibers);
  auto r = Engine::run(o, [](Proc& p) {
    p.advance(0.001 * (p.rank() % 7 + 1));
    p.advance(0.5);
  });
  EXPECT_EQ(r.finish_times.size(), 2048u);
  EXPECT_DOUBLE_EQ(r.makespan, 0.007 + 0.5);
}

TEST(EngineBackends, FiberStackSizeOptionIsRespected) {
  Engine::Options o = backend_opts(2, SchedBackend::kFibers);
  o.fiber_stack_bytes = 256 * 1024;
  // Recursion deep enough to need more than a page but well under 256 KiB.
  std::function<double(Proc&, int)> rec = [&](Proc& p, int d) -> double {
    volatile char pad[512] = {0};
    if (d == 0) return pad[0] + p.now();
    return rec(p, d - 1);
  };
  auto r = Engine::run(o, [&](Proc& p) {
    p.advance(1.0);
    rec(p, 64);
  });
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
}

// ---- abort unwinding -------------------------------------------------------

TEST(EngineAbort, ProcBlockedInCollectiveStyleWaitUnwinds) {
  // Ranks 1..3 block in a gather-style wait that will never be satisfied;
  // rank 0 throws.  The abort must drain all suspended procs — running
  // their destructors — and rethrow rank 0's error, not hang or leak.
  struct Tracker {
    std::atomic<int>* count;
    explicit Tracker(std::atomic<int>* c) : count(c) {}
    ~Tracker() { count->fetch_add(1); }
  };
  std::atomic<int> destroyed{0};
  EXPECT_THROW(Engine::run(opts(4),
                           [&](Proc& p) {
                             Tracker t(&destroyed);
                             if (p.rank() == 0) {
                               p.advance(1.0);
                               throw IoError("rank 0 failed");
                             }
                             p.block();  // waiting for a message forever
                           }),
               IoError);
  EXPECT_EQ(destroyed.load(), 4);  // every rank's stack fully unwound
}

TEST(EngineAbort, NeverStartedProcsSkipTheirBodies) {
  // With enough ranks, some have not had their first dispatch when rank 0
  // throws at t=0; their bodies must not run during the drain.
  std::atomic<int> started{0};
  EXPECT_THROW(Engine::run(opts(32),
                           [&](Proc& p) {
                             if (p.rank() == 0) throw IoError("early");
                             started.fetch_add(1);
                             p.advance(1.0);
                           }),
               IoError);
  EXPECT_EQ(started.load(), 0);
}

TEST(EngineAbort, DestructorsMayAdvanceTheClockDuringUnwind) {
  // A destructor that yields (advances virtual time) while the abort
  // unwinds must complete without re-entering the scheduler fatally —
  // the regression behind flushing write-behind buffers from ~File().
  struct FlushOnExit {
    Proc* p;
    ~FlushOnExit() { p->advance(0.25, TimeCategory::kIo); }
  };
  EXPECT_THROW(Engine::run(opts(3),
                           [&](Proc& p) {
                             FlushOnExit f{&p};
                             if (p.rank() == 2) throw IoError("late");
                             p.block();
                           }),
               IoError);
}

TEST(EngineAbort, RepeatedRunsAfterAbortStayClean) {
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(
        Engine::run(opts(4),
                    [](Proc& p) {
                      if (p.rank() == 1) throw IoError("again");
                      p.block();
                    }),
        IoError);
  }
  // The engine is per-run state; a fresh run works normally.
  auto r = Engine::run(opts(2), [](Proc& p) { p.advance(1.0); });
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
}

// ---- multi-job tenancy -----------------------------------------------------

TEST(EngineJobs, RanksAreJobLocalAndGlobalRanksAreDense) {
  std::vector<int> ranks, globals, jobs;
  std::vector<Engine::JobSpec> spec(2);
  spec[0].name = "a";
  spec[0].nprocs = 2;
  spec[0].body = [&](Proc& p) {
    ranks.push_back(p.rank());
    globals.push_back(p.global_rank());
    jobs.push_back(p.job());
    EXPECT_EQ(p.nprocs(), 2);
  };
  spec[1].name = "b";
  spec[1].nprocs = 3;
  spec[1].body = [&](Proc& p) {
    ranks.push_back(p.rank());
    globals.push_back(p.global_rank());
    jobs.push_back(p.job());
    EXPECT_EQ(p.nprocs(), 3);
  };
  Engine::Options o;
  o.env_perturb = false;
  auto results = Engine::run_jobs(o, std::move(spec));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "a");
  EXPECT_EQ(results[0].result.finish_times.size(), 2u);
  EXPECT_EQ(results[1].result.finish_times.size(), 3u);
  std::sort(ranks.begin(), ranks.end());
  std::sort(globals.begin(), globals.end());
  EXPECT_EQ(ranks, (std::vector<int>{0, 0, 1, 1, 2}));
  EXPECT_EQ(globals, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineJobs, StartTimeOffsetsTheJobsClockDomain) {
  std::vector<Engine::JobSpec> spec(2);
  spec[0].nprocs = 1;
  spec[0].body = [](Proc& p) { p.advance(1.0); };
  spec[1].nprocs = 1;
  spec[1].start_time = 10.0;
  spec[1].body = [](Proc& p) {
    EXPECT_DOUBLE_EQ(p.now(), 10.0);
    EXPECT_DOUBLE_EQ(p.job_start(), 10.0);
    p.advance(1.0);
  };
  Engine::Options o;
  o.env_perturb = false;
  auto results = Engine::run_jobs(o, std::move(spec));
  EXPECT_DOUBLE_EQ(results[0].result.makespan, 1.0);
  EXPECT_DOUBLE_EQ(results[1].result.makespan, 11.0);  // absolute clocks
}

TEST(EngineJobs, CrossJobSignalByJobAndRank) {
  std::vector<Engine::JobSpec> spec(2);
  spec[0].nprocs = 1;
  spec[0].body = [](Proc& p) {
    p.block();  // woken by job 1
    EXPECT_DOUBLE_EQ(p.now(), 0.0);
  };
  spec[1].nprocs = 1;
  spec[1].body = [](Proc& p) {
    p.advance(2.0);
    p.engine().signal(/*job=*/0, /*rank=*/0);
  };
  Engine::Options o;
  o.env_perturb = false;
  auto results = Engine::run_jobs(o, std::move(spec));
  ASSERT_EQ(results.size(), 2u);
}

TEST(EngineJobs, SingleJobRunJobsMatchesRun) {
  auto body = [](Proc& p) {
    for (int i = 0; i < 3; ++i) p.advance(p.rng().next_double() + 0.1);
  };
  Engine::Options o = classic_opts(4);
  auto direct = Engine::run(o, body);
  std::vector<Engine::JobSpec> spec(1);
  spec[0].nprocs = 4;
  spec[0].body = body;
  auto jobs = Engine::run_jobs(o, std::move(spec));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].result.finish_times, direct.finish_times);
  EXPECT_DOUBLE_EQ(jobs[0].result.makespan, direct.makespan);
}

TEST(EngineJobs, ExceptionInOneJobAbortsTheRun) {
  std::vector<Engine::JobSpec> spec(2);
  spec[0].nprocs = 2;
  spec[0].body = [](Proc& p) { p.block(); };
  spec[1].nprocs = 1;
  spec[1].body = [](Proc& p) {
    p.advance(0.5);
    throw IoError("job 1 failed");
  };
  Engine::Options o;
  o.env_perturb = false;
  EXPECT_THROW(Engine::run_jobs(o, std::move(spec)), IoError);
}

class EngineFanSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineFanSweep, MakespanEqualsSlowestRank) {
  int n = GetParam();
  auto r = Engine::run(opts(n), [](Proc& p) {
    p.advance(0.1 * (p.rank() + 1));
  });
  EXPECT_DOUBLE_EQ(r.makespan, 0.1 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineFanSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

}  // namespace
}  // namespace paramrio::sim
