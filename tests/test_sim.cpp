// Unit tests for the conservative virtual-time engine.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/engine.hpp"

namespace paramrio::sim {
namespace {

Engine::Options opts(int n) {
  Engine::Options o;
  o.nprocs = n;
  return o;
}

/// Classic lowest-rank tie order, immune to a suite-wide
/// PARAMRIO_SCHED_SEED — for the tests that document that exact order.
Engine::Options classic_opts(int n) {
  Engine::Options o = opts(n);
  o.env_perturb = false;
  return o;
}

TEST(Engine, SingleProcAdvances) {
  auto r = Engine::run(opts(1), [](Proc& p) {
    p.advance(1.5);
    p.advance(0.5, TimeCategory::kIo);
  });
  EXPECT_DOUBLE_EQ(r.finish_times[0], 2.0);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_DOUBLE_EQ(r.stats[0].cpu_time, 1.5);
  EXPECT_DOUBLE_EQ(r.stats[0].io_time, 0.5);
}

TEST(Engine, ClockAtLeastOnlyMovesForward) {
  auto r = Engine::run(opts(1), [](Proc& p) {
    p.advance(3.0);
    p.clock_at_least(1.0, TimeCategory::kComm);  // no-op
    EXPECT_DOUBLE_EQ(p.now(), 3.0);
    p.clock_at_least(4.0, TimeCategory::kComm);
    EXPECT_DOUBLE_EQ(p.now(), 4.0);
  });
  EXPECT_DOUBLE_EQ(r.stats[0].comm_time, 1.0);
}

TEST(Engine, NegativeAdvanceThrows) {
  EXPECT_THROW(
      Engine::run(opts(1), [](Proc& p) { p.advance(-1.0); }), LogicError);
}

TEST(Engine, ExceptionInBodyPropagates) {
  EXPECT_THROW(Engine::run(opts(4),
                           [](Proc& p) {
                             p.advance(0.1);
                             if (p.rank() == 2) throw IoError("boom");
                             p.advance(10.0);
                           }),
               IoError);
}

TEST(Engine, ExecutionIsSerializedAndDeterministic) {
  // Record the order in which ranks execute their events; with the
  // min-clock scheduler this order is a pure function of the virtual times.
  std::vector<int> order;
  Engine::run(classic_opts(3), [&](Proc& p) {
    // rank 0 events at t=1,2,3; rank 1 at t=2,4,6; rank 2 at t=3,6,9
    for (int i = 0; i < 3; ++i) {
      p.advance(static_cast<double>(p.rank() + 1));
      order.push_back(p.rank());
    }
  });
  // Expected event completion order (time, rank):
  // (1,0)(2,0)(2,1)(3,0)(3,2)(4,1)(6,1)(6,2)(9,2)
  std::vector<int> expected = {0, 0, 1, 0, 2, 1, 1, 2, 2};
  EXPECT_EQ(order, expected);
}

TEST(Engine, DeterministicAcrossRepeatedRuns) {
  auto run_once = [] {
    std::vector<int> order;
    Engine::run(opts(5), [&](Proc& p) {
      for (int i = 0; i < 10; ++i) {
        p.advance(p.rng().next_double() + 0.01);
        order.push_back(p.rank());
      }
    });
    return order;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Engine, PerRankRngStreamsDiffer) {
  std::vector<std::uint64_t> first(3);
  Engine::run(opts(3), [&](Proc& p) {
    first[static_cast<std::size_t>(p.rank())] = p.rng().next_u64();
  });
  EXPECT_NE(first[0], first[1]);
  EXPECT_NE(first[1], first[2]);
}

TEST(Engine, SeedChangesRngStreams) {
  Engine::Options a = opts(1), b = opts(1);
  b.seed = 999;
  std::uint64_t va = 0, vb = 0;
  Engine::run(a, [&](Proc& p) { va = p.rng().next_u64(); });
  Engine::run(b, [&](Proc& p) { vb = p.rng().next_u64(); });
  EXPECT_NE(va, vb);
}

TEST(Engine, BlockedForeverIsDeadlock) {
  EXPECT_THROW(Engine::run(opts(2),
                           [](Proc& p) {
                             if (p.rank() == 0) p.block();  // nobody signals
                           }),
               DeadlockError);
}

TEST(Engine, AllBlockedIsDeadlock) {
  EXPECT_THROW(Engine::run(opts(3), [](Proc& p) { p.block(); }),
               DeadlockError);
}

TEST(Engine, SignalWakesBlockedProc) {
  // Rank 0 blocks; rank 1 advances then signals it awake.
  std::vector<double> woke(2, -1.0);
  Engine::run(opts(2), [&](Proc& p) {
    if (p.rank() == 0) {
      p.block();
      woke[0] = p.now();
    } else {
      p.advance(5.0);
      p.engine().signal(0);
      p.advance(1.0);
    }
  });
  // Rank 0's clock never advanced — blocking does not consume virtual time;
  // the wake simply makes it runnable again at its own clock.
  EXPECT_DOUBLE_EQ(woke[0], 0.0);
}

TEST(Engine, CurrentProcAccessor) {
  EXPECT_FALSE(in_simulation());
  EXPECT_THROW(current_proc(), LogicError);
  Engine::run(opts(2), [](Proc& p) {
    EXPECT_TRUE(in_simulation());
    EXPECT_EQ(&current_proc(), &p);
  });
  EXPECT_FALSE(in_simulation());
}

TEST(Timeline, FifoQueueing) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.acquire(0.0, 2.0), 2.0);   // idle: starts immediately
  EXPECT_DOUBLE_EQ(tl.acquire(1.0, 2.0), 4.0);   // queued behind first
  EXPECT_DOUBLE_EQ(tl.acquire(10.0, 2.0), 12.0); // idle again
  tl.reset();
  EXPECT_DOUBLE_EQ(tl.acquire(0.0, 1.0), 1.0);
}

TEST(Engine, SharedTimelineSerializesContendingProcs) {
  // 4 procs each request 1s of service on the same resource at t=0.
  Timeline disk;
  auto r = Engine::run(classic_opts(4), [&](Proc& p) {
    p.use_resource(disk, 1.0, TimeCategory::kIo);
  });
  // Served in rank order (deterministic tie-break): completions 1,2,3,4.
  EXPECT_DOUBLE_EQ(r.finish_times[0], 1.0);
  EXPECT_DOUBLE_EQ(r.finish_times[1], 2.0);
  EXPECT_DOUBLE_EQ(r.finish_times[2], 3.0);
  EXPECT_DOUBLE_EQ(r.finish_times[3], 4.0);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(Engine, IndependentTimelinesRunInParallel) {
  std::vector<Timeline> disks(4);
  auto r = Engine::run(opts(4), [&](Proc& p) {
    p.use_resource(disks[static_cast<std::size_t>(p.rank())], 1.0,
                   TimeCategory::kIo);
  });
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
}

TEST(Engine, ResourceArbitrationFollowsVirtualTime) {
  // Rank 1 reaches the disk at t=0.5, rank 0 at t=2.0: rank 1 must be
  // served first even though rank 0 has the lower rank id.
  Timeline disk;
  auto r = Engine::run(opts(2), [&](Proc& p) {
    p.advance(p.rank() == 0 ? 2.0 : 0.5);
    p.use_resource(disk, 1.0, TimeCategory::kIo);
  });
  EXPECT_DOUBLE_EQ(r.finish_times[1], 1.5);  // 0.5 + 1.0, no queueing
  EXPECT_DOUBLE_EQ(r.finish_times[0], 3.0);  // idle again by t=2.0
}

TEST(Engine, StatsAccumulateAcrossCategories) {
  auto r = Engine::run(opts(1), [](Proc& p) {
    p.advance(1.0, TimeCategory::kCpu);
    p.advance(2.0, TimeCategory::kComm);
    p.advance(3.0, TimeCategory::kIo);
    p.stats().bytes_sent += 100;
    p.stats().io_requests += 2;
  });
  EXPECT_DOUBLE_EQ(r.stats[0].cpu_time, 1.0);
  EXPECT_DOUBLE_EQ(r.stats[0].comm_time, 2.0);
  EXPECT_DOUBLE_EQ(r.stats[0].io_time, 3.0);
  EXPECT_EQ(r.stats[0].bytes_sent, 100u);
  EXPECT_EQ(r.stats[0].io_requests, 2u);
}

TEST(Engine, ZeroProcsRejected) {
  EXPECT_THROW(Engine::run(opts(0), [](Proc&) {}), LogicError);
}

TEST(Engine, ManyProcsComplete) {
  auto r = Engine::run(opts(64), [](Proc& p) {
    for (int i = 0; i < 5; ++i) p.advance(0.25);
  });
  for (double t : r.finish_times) EXPECT_DOUBLE_EQ(t, 1.25);
}


TEST(Engine, AbortWakesBlockedProcs) {
  // Rank 1 blocks forever; rank 0 throws.  The abort must unwind rank 1
  // rather than hang the run, and rank 0's error must surface.
  EXPECT_THROW(Engine::run(opts(3),
                           [](Proc& p) {
                             if (p.rank() == 1) p.block();
                             if (p.rank() == 0) {
                               p.advance(0.5);
                               throw IoError("rank 0 failed");
                             }
                             p.advance(1.0);
                           }),
               IoError);
}

TEST(Engine, SignalBeforeBlockIsNotLost) {
  // A signal delivered while the target is runnable is a no-op; the target
  // must still be able to block later and be woken by a subsequent signal.
  Engine::run(opts(2), [](Proc& p) {
    if (p.rank() == 1) {
      p.engine().signal(0);  // rank 0 is runnable: no-op
      p.advance(1.0);
      p.engine().signal(0);  // this one matters
    } else {
      p.advance(0.5);
      p.block();
      EXPECT_DOUBLE_EQ(p.now(), 0.5);
    }
  });
}

class EngineFanSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineFanSweep, MakespanEqualsSlowestRank) {
  int n = GetParam();
  auto r = Engine::run(opts(n), [](Proc& p) {
    p.advance(0.1 * (p.rank() + 1));
  });
  EXPECT_DOUBLE_EQ(r.makespan, 0.1 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineFanSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

}  // namespace
}  // namespace paramrio::sim
