// Shape-regression tests: the qualitative directions of the paper's figures
// must hold even at reduced problem size, guarding the platform calibration
// against accidental regressions.  (The benches measure the full sizes; see
// EXPERIMENTS.md.)
#include <gtest/gtest.h>

#include "harness.hpp"

namespace paramrio::bench {
namespace {

enzo::SimulationConfig shape_config(std::uint64_t n = 32) {
  enzo::SimulationConfig c;
  c.root_dims = {n, n, n};
  c.particles_per_cell = 0.5;
  c.compute_per_cell = 0.0;
  return c;
}

IoResult run(const platform::Machine& m, Backend b, int procs,
             std::uint64_t n = 32) {
  RunSpec spec;
  spec.machine = m;
  spec.config = shape_config(n);
  spec.nprocs = procs;
  spec.backend = b;
  return run_enzo_io(spec);
}

TEST(Shapes, Fig6OriginMpiIoWritesBeatHdf4) {
  // The Origin advantage needs the real AMR64 volume (at 32^3 the fixed
  // per-collective costs cancel it — the AMR64-read parity noted in
  // EXPERIMENTS.md).
  auto hdf4 = run(platform::origin2000_xfs(), Backend::kHdf4, 8, 64);
  auto mpiio = run(platform::origin2000_xfs(), Backend::kMpiIo, 8, 64);
  EXPECT_LT(mpiio.write_time, hdf4.write_time);
}

TEST(Shapes, Fig7GpfsMpiIoWritesLoseToHdf4) {
  auto hdf4 = run(platform::sp2_gpfs(), Backend::kHdf4, 16);
  auto mpiio = run(platform::sp2_gpfs(), Backend::kMpiIo, 16);
  EXPECT_GT(mpiio.write_time, hdf4.write_time);
}

TEST(Shapes, Fig8EthernetReadsFavourMpiIo) {
  auto hdf4 = run(platform::chiba_pvfs_ethernet(), Backend::kHdf4, 8);
  auto mpiio = run(platform::chiba_pvfs_ethernet(), Backend::kMpiIo, 8);
  EXPECT_LT(mpiio.read_time, hdf4.read_time);
  // Writes show no real MPI-IO advantage on the shared Ethernet.
  EXPECT_GT(mpiio.write_time, 0.7 * hdf4.write_time);
}

TEST(Shapes, Fig9LocalDisksFavourMpiIoStrongly) {
  auto hdf4 = run(platform::chiba_local_disk(), Backend::kHdf4, 8);
  auto mpiio = run(platform::chiba_local_disk(), Backend::kMpiIo, 8);
  EXPECT_LT(mpiio.write_time, hdf4.write_time / 1.2);
  EXPECT_LT(mpiio.read_time, hdf4.read_time / 1.5);
}

TEST(Shapes, Fig10Hdf5WritesMuchSlowerThanMpiIo) {
  auto mpiio = run(platform::origin2000_xfs(), Backend::kMpiIo, 8);
  auto hdf5 = run(platform::origin2000_xfs(), Backend::kHdf5, 8);
  EXPECT_GT(hdf5.write_time, 2.0 * mpiio.write_time);
}

TEST(Shapes, ExtensionPnetcdfTracksRawMpiIo) {
  auto mpiio = run(platform::origin2000_xfs(), Backend::kMpiIo, 8);
  auto pnetcdf = run(platform::origin2000_xfs(), Backend::kPnetcdf, 8);
  EXPECT_LT(pnetcdf.write_time, 1.25 * mpiio.write_time);
  EXPECT_GT(pnetcdf.write_time, 0.75 * mpiio.write_time);
}

}  // namespace
}  // namespace paramrio::bench
