// Unit tests for the mini-MPI: point-to-point semantics and all collectives,
// across a sweep of communicator sizes (including non-powers of two).
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "mpi/comm.hpp"

namespace paramrio::mpi {
namespace {

RuntimeParams rparams(int n) {
  RuntimeParams p;
  p.nprocs = n;
  p.net.latency = us(10);
  p.net.bandwidth = mb_per_s(100);
  return p;
}

Bytes make_bytes(const std::string& s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::string as_string(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TEST(Comm, SendRecvDeliversPayload) {
  Runtime rt(rparams(2));
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      auto msg = make_bytes("hello from zero");
      c.send(1, 7, msg);
    } else {
      Bytes got = c.recv(0, 7);
      EXPECT_EQ(as_string(got), "hello from zero");
    }
  });
}

TEST(Comm, TagMatchingIsSelective) {
  Runtime rt(rparams(2));
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, make_bytes("one"));
      c.send(1, 2, make_bytes("two"));
    } else {
      // Receive out of order: tag 2 first.
      EXPECT_EQ(as_string(c.recv(0, 2)), "two");
      EXPECT_EQ(as_string(c.recv(0, 1)), "one");
    }
  });
}

TEST(Comm, FifoOrderWithinTag) {
  Runtime rt(rparams(2));
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        c.send(1, 9, make_bytes("msg" + std::to_string(i)));
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(as_string(c.recv(0, 9)), "msg" + std::to_string(i));
      }
    }
  });
}

TEST(Comm, SendToSelf) {
  Runtime rt(rparams(1));
  rt.run([](Comm& c) {
    c.send(0, 3, make_bytes("loopback"));
    EXPECT_EQ(as_string(c.recv(0, 3)), "loopback");
  });
}

TEST(Comm, RecvBlocksUntilMessageArrives) {
  Runtime rt(rparams(2));
  auto r = rt.run([](Comm& c) {
    if (c.rank() == 1) {
      Bytes got = c.recv(0, 1);  // posted long before the send
      EXPECT_EQ(got.size(), 8u);
      EXPECT_GE(c.proc().now(), 5.0);  // can't complete before the send
    } else {
      c.proc().advance(5.0);
      c.send(1, 1, Bytes(8));
    }
  });
}

TEST(Comm, MissingMessageDeadlocks) {
  Runtime rt(rparams(2));
  EXPECT_THROW(rt.run([](Comm& c) {
                 if (c.rank() == 1) c.recv(0, 42);  // never sent
               }),
               DeadlockError);
}

TEST(Comm, TypedSendRecv) {
  Runtime rt(rparams(2));
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> v = {1.5, -2.5, 3.25};
      c.send_values<double>(1, 4, v);
    } else {
      auto v = c.recv_values<double>(0, 4);
      ASSERT_EQ(v.size(), 3u);
      EXPECT_DOUBLE_EQ(v[1], -2.5);
    }
  });
}

class CommSweep : public ::testing::TestWithParam<int> {};

TEST_P(CommSweep, BarrierSynchronises) {
  Runtime rt(rparams(GetParam()));
  auto r = rt.run([](Comm& c) {
    // Rank r idles r seconds, then the barrier holds everyone to >= max.
    c.proc().advance(static_cast<double>(c.rank()));
    c.barrier();
    EXPECT_GE(c.proc().now(), static_cast<double>(c.size() - 1));
  });
}

TEST_P(CommSweep, BcastFromEveryRoot) {
  int n = GetParam();
  Runtime rt(rparams(n));
  rt.run([](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      Bytes data;
      if (c.rank() == root) {
        data = make_bytes("root says " + std::to_string(root));
      }
      c.bcast(data, root);
      EXPECT_EQ(as_string(data), "root says " + std::to_string(root));
    }
  });
}

TEST_P(CommSweep, GathervCollectsInRankOrder) {
  Runtime rt(rparams(GetParam()));
  rt.run([](Comm& c) {
    // Variable-size contribution: rank r sends r+1 bytes of value r.
    Bytes mine(static_cast<std::size_t>(c.rank() + 1),
               static_cast<std::byte>(c.rank()));
    auto all = c.gatherv(mine, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(c.size()));
      for (int r = 0; r < c.size(); ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r + 1));
        for (auto b : all[static_cast<std::size_t>(r)]) {
          EXPECT_EQ(b, static_cast<std::byte>(r));
        }
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CommSweep, ScattervDistributes) {
  Runtime rt(rparams(GetParam()));
  rt.run([](Comm& c) {
    std::vector<Bytes> chunks;
    if (c.rank() == 0) {
      for (int r = 0; r < c.size(); ++r) {
        chunks.push_back(Bytes(static_cast<std::size_t>(2 * r + 1),
                               static_cast<std::byte>(r * 3)));
      }
    }
    Bytes mine = c.scatterv(chunks, 0);
    EXPECT_EQ(mine.size(), static_cast<std::size_t>(2 * c.rank() + 1));
    for (auto b : mine) EXPECT_EQ(b, static_cast<std::byte>(c.rank() * 3));
  });
}

TEST_P(CommSweep, AllgathervEveryoneSeesEverything) {
  Runtime rt(rparams(GetParam()));
  rt.run([](Comm& c) {
    Bytes mine(static_cast<std::size_t>(c.rank() + 1),
               static_cast<std::byte>(c.rank() + 100));
    auto all = c.allgatherv(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(c.size()));
    for (int r = 0; r < c.size(); ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r + 1));
      for (auto b : all[static_cast<std::size_t>(r)]) {
        EXPECT_EQ(b, static_cast<std::byte>(r + 100));
      }
    }
  });
}

TEST_P(CommSweep, AlltoallvPersonalizedExchange) {
  Runtime rt(rparams(GetParam()));
  rt.run([](Comm& c) {
    // out[i][k] encodes (sender, receiver).
    std::vector<Bytes> out(static_cast<std::size_t>(c.size()));
    for (int i = 0; i < c.size(); ++i) {
      out[static_cast<std::size_t>(i)] = Bytes(
          static_cast<std::size_t>(c.rank() + i + 1),
          static_cast<std::byte>(c.rank() * 16 + i));
    }
    auto in = c.alltoallv(out);
    ASSERT_EQ(in.size(), static_cast<std::size_t>(c.size()));
    for (int i = 0; i < c.size(); ++i) {
      EXPECT_EQ(in[static_cast<std::size_t>(i)].size(),
                static_cast<std::size_t>(i + c.rank() + 1));
      for (auto b : in[static_cast<std::size_t>(i)]) {
        EXPECT_EQ(b, static_cast<std::byte>(i * 16 + c.rank()));
      }
    }
  });
}

TEST_P(CommSweep, Reductions) {
  int n = GetParam();
  Runtime rt(rparams(n));
  rt.run([n](Comm& c) {
    auto r = static_cast<std::uint64_t>(c.rank());
    EXPECT_EQ(c.allreduce_sum(r + 1),
              static_cast<std::uint64_t>(n) * (n + 1) / 2);
    EXPECT_EQ(c.allreduce_max(r), static_cast<std::uint64_t>(n - 1));
    EXPECT_EQ(c.allreduce_min(r + 5), 5u);
    EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank()) * 1.5),
                     (n - 1) * 1.5);
    auto v = c.allreduce_sum(std::vector<std::uint64_t>{r, 1, 2 * r});
    EXPECT_EQ(v[0], static_cast<std::uint64_t>(n) * (n - 1) / 2);
    EXPECT_EQ(v[1], static_cast<std::uint64_t>(n));
    EXPECT_EQ(v[2], static_cast<std::uint64_t>(n) * (n - 1));
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Comm, SendrecvExchange) {
  Runtime rt(rparams(2));
  rt.run([](Comm& c) {
    int other = 1 - c.rank();
    auto mine = make_bytes("from " + std::to_string(c.rank()));
    Bytes got = c.sendrecv(other, 5, mine, other, 5);
    EXPECT_EQ(as_string(got), "from " + std::to_string(other));
  });
}

TEST(Comm, IrecvPostedBeforeSendCompletesOnWait) {
  Runtime rt(rparams(2));
  rt.run([](Comm& c) {
    if (c.rank() == 1) {
      Bytes out;
      auto req = c.irecv(0, 3, out);
      EXPECT_TRUE(req.active());
      EXPECT_TRUE(out.empty());  // not yet delivered
      c.wait(req);
      EXPECT_FALSE(req.active());
      EXPECT_EQ(as_string(out), "late message");
    } else {
      c.proc().advance(1.0);
      c.send(1, 3, make_bytes("late message"));
    }
  });
}

TEST(Comm, WaitAllDrainsMixedRequests) {
  Runtime rt(rparams(3));
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      Bytes from1, from2;
      std::array<Comm::Request, 4> reqs = {
          c.irecv(1, 7, from1),
          c.irecv(2, 7, from2),
          c.isend(1, 8, make_bytes("to one")),
          c.isend(2, 8, make_bytes("to two")),
      };
      c.wait_all(reqs);
      EXPECT_EQ(as_string(from1), "one");
      EXPECT_EQ(as_string(from2), "two");
      for (auto& r : reqs) EXPECT_FALSE(r.active());
    } else {
      c.send(0, 7, make_bytes(c.rank() == 1 ? "one" : "two"));
      EXPECT_EQ(as_string(c.recv(0, 8)),
                c.rank() == 1 ? "to one" : "to two");
    }
  });
}

TEST(Comm, WaitOnNullRequestIsNoop) {
  Runtime rt(rparams(1));
  rt.run([](Comm& c) {
    Comm::Request r;
    EXPECT_FALSE(r.active());
    c.wait(r);  // must not block or throw
  });
}

TEST(Comm, ChargesAccrueOnStats) {
  Runtime rt(rparams(2));
  auto r = rt.run([](Comm& c) {
    if (c.rank() == 0) c.send(1, 0, Bytes(1000));
    if (c.rank() == 1) c.recv(0, 0);
    c.charge_memcpy(300'000'000);  // 1 s at 300 MB/s
    c.charge_sort(1 << 20);
  });
  EXPECT_EQ(r.stats[0].messages_sent, 1u);
  EXPECT_EQ(r.stats[0].bytes_sent, 1000u);
  EXPECT_EQ(r.stats[1].bytes_received, 1000u);
  EXPECT_GT(r.stats[0].cpu_time, 0.9);
  EXPECT_GT(r.stats[0].comm_time, 0.0);
}

TEST(Comm, GatherAtRootSerialisesOnReceiverCopies) {
  // The HDF4-path mechanism: gathering S bytes from P ranks costs the root
  // at least S * recv_byte_cost, regardless of network parallelism.
  RuntimeParams p = rparams(8);
  p.net.recv_byte_cost = 1.0 / mb_per_s(100);
  Runtime rt(p);
  auto r = rt.run([](Comm& c) {
    Bytes mine(static_cast<std::size_t>(MiB));
    c.gatherv(mine, 0);
  });
  // 7 remote MiB at 100 MB/s copy = ~0.073 s minimum at the root.
  EXPECT_GT(r.finish_times[0], 0.07);
}

}  // namespace
}  // namespace paramrio::mpi
