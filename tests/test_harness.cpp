// Smoke tests for the benchmark harness itself: every (platform, backend)
// pair must produce sane timings and consistent byte counts on a small
// workload — guarding the measurement plumbing every figure depends on.
#include <gtest/gtest.h>

#include "harness.hpp"

namespace paramrio::bench {
namespace {

enzo::SimulationConfig tiny_config() {
  enzo::SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;
  c.compute_per_cell = 0.0;
  return c;
}

class HarnessMatrix
    : public ::testing::TestWithParam<std::tuple<int, Backend>> {};

TEST_P(HarnessMatrix, ProducesSaneMeasurements) {
  auto [machine_idx, backend] = GetParam();
  RunSpec spec;
  switch (machine_idx) {
    case 0:
      spec.machine = platform::origin2000_xfs();
      break;
    case 1:
      spec.machine = platform::sp2_gpfs();
      break;
    case 2:
      spec.machine = platform::chiba_pvfs_ethernet();
      break;
    default:
      spec.machine = platform::chiba_local_disk();
      break;
  }
  spec.config = tiny_config();
  spec.nprocs = 4;
  spec.backend = backend;
  spec.evolve_cycles = 1;

  IoResult r = run_enzo_io(spec);
  EXPECT_GT(r.write_time, 0.0);
  EXPECT_GT(r.read_time, 0.0);
  EXPECT_LT(r.write_time, 600.0);
  EXPECT_LT(r.read_time, 600.0);
  // A dump moves at least its payload; format overhead stays within 10%.
  EXPECT_GE(r.fs_bytes_written, r.payload_bytes);
  EXPECT_LE(r.fs_bytes_written,
            r.payload_bytes + r.payload_bytes / 10 + 64 * KiB);
  // The restart read moves roughly the same volume it wrote (sieving can
  // over-read hulls; caching can absorb re-reads).
  EXPECT_GT(r.fs_bytes_read, r.payload_bytes / 2);
  EXPECT_GE(r.grids, 2u);  // root + refinement
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, HarnessMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(Backend::kHdf4, Backend::kMpiIo,
                                         Backend::kHdf5, Backend::kPnetcdf)));

TEST(Harness, DeterministicAcrossRepeats) {
  RunSpec spec;
  spec.machine = platform::origin2000_xfs();
  spec.config = tiny_config();
  spec.nprocs = 4;
  spec.backend = Backend::kMpiIo;
  IoResult a = run_enzo_io(spec);
  IoResult b = run_enzo_io(spec);
  EXPECT_DOUBLE_EQ(a.write_time, b.write_time);
  EXPECT_DOUBLE_EQ(a.read_time, b.read_time);
  EXPECT_EQ(a.fs_bytes_written, b.fs_bytes_written);
  EXPECT_EQ(a.fs_bytes_read, b.fs_bytes_read);
}

TEST(Harness, BackendNames) {
  EXPECT_EQ(to_string(Backend::kHdf4), "HDF4");
  EXPECT_EQ(to_string(Backend::kMpiIo), "MPI-IO");
  EXPECT_EQ(to_string(Backend::kHdf5), "HDF5");
  EXPECT_EQ(to_string(Backend::kPnetcdf), "PnetCDF");
}

}  // namespace
}  // namespace paramrio::bench
