// Property tests for the retry path: backoff shape, exact byte accounting of
// short transfers (the bug class the fault layer exists to catch), and the
// headline property — a retried write stream converges to exactly the bytes
// a fault-free run would have produced.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "mpi/io/file.hpp"
#include "pfs/local_fs.hpp"
#include "sim/engine.hpp"
#include "stor/object_store.hpp"

namespace paramrio::fault {
namespace {

sim::Engine::Options eopts(int n) {
  sim::Engine::Options o;
  o.nprocs = n;
  return o;
}

mpi::RuntimeParams rparams(int n) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  return p;
}

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  return v;
}

std::map<std::string, std::vector<std::byte>> snapshot(
    const stor::ObjectStore& store) {
  std::map<std::string, std::vector<std::byte>> out;
  for (const auto& name : store.list()) {
    std::vector<std::byte> v(store.size(name));
    if (!v.empty()) store.read_at(name, 0, v);
    out.emplace(name, std::move(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Backoff shape
// ---------------------------------------------------------------------------

TEST(Backoff, MonotoneNonDecreasingAndClamped) {
  RetryPolicy p;
  p.max_retries = 16;
  p.backoff_base = 1e-4;
  p.backoff_factor = 2.0;
  p.backoff_max = 1e-2;
  double prev = 0.0;
  for (int attempt = 0; attempt < 32; ++attempt) {
    double d = backoff_delay(p, attempt);
    EXPECT_GE(d, prev) << "attempt " << attempt;
    EXPECT_LE(d, p.backoff_max) << "attempt " << attempt;
    prev = d;
  }
  EXPECT_DOUBLE_EQ(backoff_delay(p, 0), 1e-4);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 1), 2e-4);
  EXPECT_DOUBLE_EQ(backoff_delay(p, 30), 1e-2);  // clamped
}

TEST(Backoff, RetryKeyDistinguishesPolicies) {
  RetryPolicy off;
  EXPECT_EQ(retry_key(off), "r0");
  RetryPolicy a;
  a.max_retries = 4;
  RetryPolicy b = a;
  b.verify_short_writes = false;
  EXPECT_NE(retry_key(a), retry_key(off));
  EXPECT_NE(retry_key(a), retry_key(b));
  EXPECT_EQ(retry_key(a), retry_key(RetryPolicy{.max_retries = 4}));
}

// ---------------------------------------------------------------------------
// Short-transfer accounting at the fs layer (regression: write_at used to
// report the *requested* size, so an injected short write left ProcStats,
// observers and the store disagreeing about what landed).
// ---------------------------------------------------------------------------

TEST(FsAccounting, ShortWriteReportsActualBytesEverywhere) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kShortWrite;
  s.short_fraction = 0.5;
  s.max_faults = 1;
  plan.specs.push_back(s);
  Injector inj(plan);
  fs.attach_fault_hook(&inj);

  sim::Engine::run(eopts(1), [&](sim::Proc& p) {
    int fd = fs.open("f", pfs::OpenMode::kCreate);
    auto data = pattern(100);
    std::uint64_t wrote = fs.write_at(fd, 0, data);
    EXPECT_EQ(wrote, 50u);
    EXPECT_EQ(p.stats().io_bytes_written, 50u);
    EXPECT_EQ(fs.store().size("f"), 50u);
    // The landed prefix is the data's prefix, not garbage.
    std::vector<std::byte> back(50);
    fs.store().read_at("f", 0, back);
    EXPECT_TRUE(std::equal(back.begin(), back.end(), data.begin()));
    // The caller resumes; accounting keeps tracking actual bytes.
    wrote += fs.write_at(
        fd, wrote, std::span<const std::byte>(data).subspan(wrote));
    EXPECT_EQ(wrote, 100u);
    EXPECT_EQ(p.stats().io_bytes_written, 100u);
    fs.close(fd);
  });
}

TEST(FsAccounting, ShortReadReportsActualBytes) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kShortRead;
  s.short_fraction = 0.25;
  s.max_faults = 1;
  plan.specs.push_back(s);
  Injector inj(plan);

  sim::Engine::run(eopts(1), [&](sim::Proc& p) {
    int fd = fs.open("f", pfs::OpenMode::kCreate);
    auto data = pattern(80);
    fs.write_at(fd, 0, data);
    fs.attach_fault_hook(&inj);
    std::vector<std::byte> out(80);
    std::uint64_t got = fs.read_at(fd, 0, out);
    EXPECT_EQ(got, 20u);
    EXPECT_EQ(p.stats().io_bytes_read, 20u);
    EXPECT_TRUE(std::equal(out.begin(), out.begin() + 20, data.begin()));
    fs.close(fd);
  });
  fs.attach_fault_hook(nullptr);
}

TEST(FsRetry, ResumesShortsAndAbsorbsTransients) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  FaultPlan plan;
  plan.seed = 5;
  FaultSpec shortw;
  shortw.kind = FaultKind::kShortWrite;
  shortw.probability = 0.4;
  shortw.max_consecutive = 2;
  FaultSpec eio;
  eio.kind = FaultKind::kTransientError;
  eio.probability = 0.2;
  eio.max_consecutive = 2;
  plan.specs.push_back(shortw);
  plan.specs.push_back(eio);
  Injector inj(plan);
  fs.attach_fault_hook(&inj);
  RetryPolicy rp;
  rp.max_retries = 10;
  fs.set_retry(rp);

  sim::Engine::run(eopts(1), [&](sim::Proc&) {
    int fd = fs.open("f", pfs::OpenMode::kCreate);
    auto data = pattern(10000, 3);
    // With fs-level retry every call completes in full...
    EXPECT_EQ(fs.write_at(fd, 0, data), data.size());
    std::vector<std::byte> out(data.size());
    EXPECT_EQ(fs.read_at(fd, 0, out), data.size());
    EXPECT_EQ(out, data);
    fs.close(fd);
  });
  // ...and the faults demonstrably happened.
  EXPECT_GT(inj.counters().injected_total(), 0u);
  EXPECT_GT(fs.fs_retries(), 0u);
}

TEST(FsRetry, ExhaustedBudgetPropagatesTransientError) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  FaultPlan plan;
  FaultSpec eio;
  eio.kind = FaultKind::kTransientError;  // every op, forever
  plan.specs.push_back(eio);
  Injector inj(plan);
  fs.attach_fault_hook(&inj);
  RetryPolicy rp;
  rp.max_retries = 3;
  fs.set_retry(rp);

  sim::Engine::run(eopts(1), [&](sim::Proc&) {
    int fd = fs.open("f", pfs::OpenMode::kCreate);
    auto data = pattern(64);
    EXPECT_THROW(fs.write_at(fd, 0, data), TransientIoError);
    fs.close(fd);
  });
  // Budget respected: 1 initial + 3 retries, all faulted.
  EXPECT_EQ(inj.counters().count(FaultKind::kTransientError), 4u);
  EXPECT_EQ(fs.fs_retries(), 3u);
}

// ---------------------------------------------------------------------------
// mpi::io::File retry: interleaved collective + independent writes under a
// bounded transient plan converge to exactly the no-fault bytes.
// ---------------------------------------------------------------------------

struct FileRunResult {
  std::map<std::string, std::vector<std::byte>> files;
  mpi::io::FileStats rank0_stats;
};

FileRunResult run_interleaved_writes(std::uint64_t fault_seed,
                                     bool inject) {
  const int p = 4;
  const std::uint64_t block = 64;
  const std::uint64_t blocks_per_rank = 48;

  pfs::LocalFs fs(pfs::LocalFsParams{});
  FaultPlan plan;
  plan.seed = fault_seed;
  FaultSpec eio;
  eio.kind = FaultKind::kTransientError;
  eio.probability = 0.2;
  eio.max_consecutive = 2;
  FaultSpec shortw;
  shortw.kind = FaultKind::kShortWrite;
  shortw.probability = 0.2;
  shortw.max_consecutive = 2;
  FaultSpec shortr;
  shortr.kind = FaultKind::kShortRead;
  shortr.probability = 0.2;
  shortr.max_consecutive = 2;
  plan.specs.push_back(eio);
  plan.specs.push_back(shortw);
  plan.specs.push_back(shortr);
  Injector inj(plan);
  if (inject) fs.attach_fault_hook(&inj);

  FileRunResult result;
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    mpi::io::Hints h;
    h.retry.max_retries = 10;
    h.retry.log_delays = true;
    mpi::io::File f(c, fs, "data", pfs::OpenMode::kCreate, h);
    // Interleaved cyclic view: rank r owns every p-th `block`-sized slot.
    f.set_view(static_cast<std::uint64_t>(c.rank()) * block,
               mpi::Datatype::vector(blocks_per_rank, block, block * p));
    auto mine = pattern(blocks_per_rank * block,
                        static_cast<unsigned>(c.rank()) + 1);
    f.write_at_all(0, mine);
    // An independent strided rewrite of my second half on top.
    auto mine2 = pattern(blocks_per_rank * block / 2,
                         static_cast<unsigned>(c.rank()) + 100);
    f.write_at(blocks_per_rank * block / 2, mine2);
    // Collective read-back sees my own final bytes despite the faults.
    std::vector<std::byte> back(blocks_per_rank * block);
    f.read_at_all(0, back);
    for (std::uint64_t i = 0; i < back.size() / 2; ++i) {
      EXPECT_EQ(back[i], mine[i]);
    }
    for (std::uint64_t i = 0; i < mine2.size(); ++i) {
      EXPECT_EQ(back[back.size() / 2 + i], mine2[i]);
    }
    if (c.rank() == 0) result.rank0_stats = f.stats();
    f.close();
  });
  result.files = snapshot(fs.store());
  return result;
}

TEST(FileRetry, RetriedWritesConvergeToNoFaultBytes) {
  FileRunResult clean = run_interleaved_writes(0, /*inject=*/false);
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    FileRunResult faulted = run_interleaved_writes(seed, /*inject=*/true);
    EXPECT_EQ(faulted.files, clean.files) << "seed " << seed;
    const RetryStats& r = faulted.rank0_stats.retry;
    EXPECT_GT(r.retries + r.short_writes + r.short_reads, 0u)
        << "seed " << seed << ": the plan injected nothing on rank 0";
  }
  EXPECT_EQ(clean.rank0_stats.retry.retries, 0u);
  EXPECT_EQ(clean.rank0_stats.retry.transient_errors, 0u);
}

TEST(FileRetry, LoggedBackoffIsMonotonePerOp) {
  FileRunResult faulted = run_interleaved_writes(11, /*inject=*/true);
  const std::vector<RetryDelay>& log =
      faulted.rank0_stats.retry.delay_log;
  ASSERT_FALSE(log.empty());
  for (std::size_t i = 1; i < log.size(); ++i) {
    if (log[i].op != log[i - 1].op) continue;
    EXPECT_GE(log[i].seconds, log[i - 1].seconds)
        << "op " << log[i].op << " entry " << i;
  }
}

TEST(FileRetry, ShortWriteVerificationIsCounted) {
  FileRunResult faulted = run_interleaved_writes(22, /*inject=*/true);
  const RetryStats& r = faulted.rank0_stats.retry;
  if (r.short_writes > 0) {
    EXPECT_GT(r.write_verifications, 0u);
  }
  EXPECT_GT(r.backoff_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Collective degradation: while the fault layer reports an I/O-server
// outage, write_at_all routes around the aggregators (whose server cannot
// serve them) and still produces the right bytes.
// ---------------------------------------------------------------------------

TEST(FileRetry, CollectiveFallsBackDuringOutage) {
  const int p = 4;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  FaultPlan plan;
  FaultSpec down;
  down.kind = FaultKind::kServerDown;
  down.after_time = 0.0;
  down.until_time = 2e-3;
  plan.specs.push_back(down);
  Injector inj(plan);
  fs.attach_fault_hook(&inj);

  std::uint64_t fallbacks = 0;
  std::uint64_t retries = 0;
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    mpi::io::Hints h;
    h.retry.max_retries = 12;
    mpi::io::File f(c, fs, "data", pfs::OpenMode::kCreate, h);
    const std::uint64_t block = 256;
    f.set_view(static_cast<std::uint64_t>(c.rank()) * block,
               mpi::Datatype::vector(8, block, block * p));
    auto mine = pattern(8 * block, static_cast<unsigned>(c.rank()) + 7);
    // Issued at t=0, inside the outage window: the collective must degrade,
    // and the independent retries ride the backoff past the outage.
    f.write_at_all(0, mine);
    std::vector<std::byte> back(mine.size());
    f.read_at_all(0, back);
    EXPECT_EQ(back, mine);
    if (c.rank() == 0) {
      fallbacks = f.stats().collective_fallbacks;
      retries = f.stats().retry.retries;
    }
    f.close();
  });
  EXPECT_GE(fallbacks, 1u);
  EXPECT_GT(retries, 0u);
  EXPECT_GT(inj.counters().count(FaultKind::kServerDown), 0u);
}

// Without retry enabled, the degradation path stays cold and transient
// errors propagate to the caller — opt-in semantics.
TEST(FileRetry, DisabledRetryPropagates) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  FaultPlan plan;
  FaultSpec eio;
  eio.kind = FaultKind::kTransientError;
  eio.max_faults = 1;
  plan.specs.push_back(eio);
  Injector inj(plan);
  fs.attach_fault_hook(&inj);

  mpi::Runtime rt(rparams(1));
  rt.run([&](mpi::Comm& c) {
    mpi::io::File f(c, fs, "data", pfs::OpenMode::kCreate);
    auto data = pattern(128);
    EXPECT_THROW(f.write_at(0, data), TransientIoError);
    // The budget-less fault fired once; the next attempt succeeds.
    f.write_at(0, data);
    f.close();
  });
}

}  // namespace
}  // namespace paramrio::fault
