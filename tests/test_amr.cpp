// Unit tests for the AMR substrate: arrays, decomposition, hierarchy,
// universe, refinement, load balancing, particle utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "amr/blocking.hpp"
#include "amr/decomp.hpp"
#include "amr/hierarchy.hpp"
#include "amr/load_balance.hpp"
#include "amr/particles_par.hpp"
#include "amr/refine.hpp"
#include "amr/universe.hpp"

namespace paramrio::amr {
namespace {

TEST(Array3, IndexingAndBytes) {
  Array3<float> a(2, 3, 4);
  EXPECT_EQ(a.size(), 24u);
  a.at(1, 2, 3) = 7.5f;
  EXPECT_FLOAT_EQ(a.data()[(1 * 3 + 2) * 4 + 3], 7.5f);
  EXPECT_EQ(a.bytes().size(), 24u * 4);
}

class ProcGridSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProcGridSweep, FactorisationCoversAllRanks) {
  int p = GetParam();
  auto g = make_proc_grid(p);
  EXPECT_EQ(g[0] * g[1] * g[2], p);
  // Balanced: max/min ratio bounded (within a factor of the largest prime).
  EXPECT_LE(g[0], p);
  // Every rank gets unique coords.
  std::set<std::array<int, 3>> seen;
  for (int r = 0; r < p; ++r) seen.insert(proc_coords(g, r));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(p));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProcGridSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16, 24, 32,
                                           64));

TEST(Decomp, BlockRangePartitionsExactly) {
  // 10 cells over 3 parts: 4,3,3.
  EXPECT_EQ(block_range(10, 3, 0), (std::array<std::uint64_t, 2>{0, 4}));
  EXPECT_EQ(block_range(10, 3, 1), (std::array<std::uint64_t, 2>{4, 3}));
  EXPECT_EQ(block_range(10, 3, 2), (std::array<std::uint64_t, 2>{7, 3}));
}

TEST(Decomp, BlockPartOfInvertsBlockRange) {
  for (std::uint64_t n : {7u, 10u, 16u, 64u}) {
    for (int parts : {1, 2, 3, 5, 8}) {
      for (int p = 0; p < parts; ++p) {
        auto [s, c] = block_range(n, parts, p);
        for (std::uint64_t i = s; i < s + c; ++i) {
          EXPECT_EQ(block_part_of(n, parts, i), p);
        }
      }
    }
  }
}

TEST(Decomp, BlocksTileTheGrid) {
  std::array<std::uint64_t, 3> dims{16, 12, 20};
  auto g = make_proc_grid(12);
  std::uint64_t total = 0;
  for (int r = 0; r < 12; ++r) {
    total += block_of(dims, g, r).cells();
  }
  EXPECT_EQ(total, 16u * 12 * 20);
}

TEST(Blocking, CopyOutInRoundTrip) {
  Array3<float> full(8, 8, 8);
  for (std::uint64_t i = 0; i < full.size(); ++i) {
    full.data()[i] = static_cast<float>(i);
  }
  BlockExtent e;
  e.start = {2, 3, 1};
  e.count = {4, 2, 5};
  std::vector<float> buf(e.cells());
  copy_block_out(full, e, buf.data());
  EXPECT_FLOAT_EQ(buf[0], full.at(2, 3, 1));
  Array3<float> dst(8, 8, 8);
  copy_block_in(dst, e, buf.data());
  for (std::uint64_t z = 2; z < 6; ++z) {
    for (std::uint64_t y = 3; y < 5; ++y) {
      for (std::uint64_t x = 1; x < 6; ++x) {
        EXPECT_FLOAT_EQ(dst.at(z, y, x), full.at(z, y, x));
      }
    }
  }
}

TEST(Hierarchy, RootAndChildren) {
  Hierarchy h;
  h.set_root({64, 64, 64});
  EXPECT_EQ(h.grid_count(), 1u);
  GridDescriptor c;
  c.level = 1;
  c.parent = 0;
  c.left_edge = {0.25, 0.25, 0.25};
  c.right_edge = {0.5, 0.5, 0.5};
  c.dims = {32, 32, 32};
  std::uint64_t id = h.add_grid(c);
  EXPECT_EQ(h.children(0), std::vector<std::uint64_t>{id});
  EXPECT_EQ(h.grid(id).level, 1);
  EXPECT_EQ(h.max_level(), 1);
  EXPECT_EQ(h.total_cells(), 64ull * 64 * 64 + 32ull * 32 * 32);
}

TEST(Hierarchy, RejectsBadNesting) {
  Hierarchy h;
  h.set_root({8, 8, 8});
  GridDescriptor c;
  c.level = 2;  // skips a level
  c.parent = 0;
  c.left_edge = {0, 0, 0};
  c.right_edge = {0.5, 0.5, 0.5};
  c.dims = {8, 8, 8};
  EXPECT_THROW(h.add_grid(c), LogicError);
  c.level = 1;
  c.right_edge = {1.5, 0.5, 0.5};  // outside the parent
  EXPECT_THROW(h.add_grid(c), LogicError);
  c.right_edge = {0.5, 0.5, 0.5};
  c.dims = {0, 8, 8};
  EXPECT_THROW(h.add_grid(c), LogicError);
}

TEST(Hierarchy, SerializeRoundTrip) {
  Hierarchy h;
  h.set_root({32, 32, 32});
  for (int i = 0; i < 5; ++i) {
    GridDescriptor c;
    c.level = 1;
    c.parent = 0;
    c.left_edge = {0.1 * i, 0.0, 0.0};
    c.right_edge = {0.1 * i + 0.1, 0.25, 0.25};
    c.dims = {8, 16, 16};
    c.owner = i % 3;
    h.add_grid(c);
  }
  Hierarchy back = Hierarchy::deserialize(h.serialize());
  EXPECT_EQ(h, back);
  EXPECT_EQ(back.children(0).size(), 5u);
}

TEST(Hierarchy, ClearSubgridsKeepsRootAndIdMonotonicity) {
  Hierarchy h;
  h.set_root({8, 8, 8});
  GridDescriptor c;
  c.level = 1;
  c.parent = 0;
  c.left_edge = {0, 0, 0};
  c.right_edge = {0.5, 0.5, 0.5};
  c.dims = {8, 8, 8};
  std::uint64_t id1 = h.add_grid(c);
  h.clear_subgrids();
  EXPECT_EQ(h.grid_count(), 1u);
  std::uint64_t id2 = h.add_grid(c);
  EXPECT_GT(id2, id1);  // ids never recycled
}

TEST(Universe, DeterministicAndPositive) {
  Universe a(42, 8), b(42, 8);
  for (int i = 0; i < 20; ++i) {
    double z = 0.05 * i, y = 0.97 - 0.04 * i, x = 0.33;
    EXPECT_DOUBLE_EQ(a.density(z, y, x, 1.0), b.density(z, y, x, 1.0));
    EXPECT_GE(a.density(z, y, x, 1.0), 1.0);
  }
}

TEST(Universe, ClumpsCreateOverdensity) {
  Universe u(7, 4);
  const Clump& c = u.clumps()[0];
  double at_center = u.density(c.center[0], c.center[1], c.center[2], 0.0);
  EXPECT_GT(at_center, 4.0);  // amplitude >= 6 at the centre
}

TEST(Universe, GrowthIncreasesPeakDensityOverTime) {
  Universe u(7, 4);
  const Clump& c = u.clumps()[1];
  // Track the clump as it drifts.
  auto peak_at = [&](double t) {
    double z = c.center[0] + c.drift[0] * t;
    double y = c.center[1] + c.drift[1] * t;
    double x = c.center[2] + c.drift[2] * t;
    return u.density(z - std::floor(z), y - std::floor(y), x - std::floor(x),
                     t);
  };
  EXPECT_GT(peak_at(2.0), peak_at(0.0));
}

TEST(Universe, FillFieldsPopulatesAllFields) {
  Universe u(3, 6);
  Grid g;
  g.desc.dims = {8, 8, 8};
  u.fill_fields(g, 0.5);
  ASSERT_EQ(g.fields.size(), static_cast<std::size_t>(kNumBaryonFields));
  // density positive, temperature = rho^(2/3) consistent.
  for (std::uint64_t z = 0; z < 8; ++z) {
    float rho = g.fields[0].at(z, 4, 4);
    EXPECT_GT(rho, 0.0f);
    EXPECT_NEAR(g.fields[6].at(z, 4, 4), std::pow(rho, 2.0f / 3.0f), 0.01);
  }
}

TEST(Universe, ParticlesBiasedTowardDensity) {
  Universe u(11, 3);
  GridDescriptor whole;
  whole.dims = {16, 16, 16};
  ParticleSet p = u.make_particles(2000, 0, whole, 0.0, Rng(5));
  ASSERT_EQ(p.size(), 2000u);
  // Mean sampled density must exceed the domain average (importance bias).
  double mean_rho = 0;
  for (double m : p.mass) mean_rho += m;
  mean_rho /= static_cast<double>(p.size());
  // Domain mean density.
  double domain_mean = 0;
  int samples = 0;
  for (double z = 0.05; z < 1; z += 0.2) {
    for (double y = 0.05; y < 1; y += 0.2) {
      for (double x = 0.05; x < 1; x += 0.2) {
        domain_mean += u.density(z, y, x, 0.0);
        ++samples;
      }
    }
  }
  domain_mean /= samples;
  EXPECT_GT(mean_rho, domain_mean);
  // Ids sequential from base.
  EXPECT_EQ(p.id[0], 0);
  EXPECT_EQ(p.id[1999], 1999);
}

TEST(Universe, DriftWrapsPositions) {
  ParticleSet p;
  p.resize(1);
  p.pos = {{{0.95}, {0.5}, {0.02}}};
  p.vel = {{{0.2}, {0.0}, {-0.1}}};
  Universe::drift_particles(p, 1.0);
  EXPECT_NEAR(p.pos[0][0], 0.15, 1e-12);
  EXPECT_NEAR(p.pos[1][0], 0.5, 1e-12);
  EXPECT_NEAR(p.pos[2][0], 0.92, 1e-12);
}

TEST(Refine, FlagAndClusterSingleBlob) {
  Array3f density(16, 16, 16, 1.0f);
  for (std::uint64_t z = 4; z < 8; ++z) {
    for (std::uint64_t y = 5; y < 9; ++y) {
      for (std::uint64_t x = 6; x < 10; ++x) {
        density.at(z, y, x) = 10.0f;
      }
    }
  }
  auto flags = flag_overdense(density, 4.0);
  RefineParams rp;
  auto boxes = cluster_flags(flags, rp);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].start, (std::array<std::uint64_t, 3>{4, 5, 6}));
  EXPECT_EQ(boxes[0].count, (std::array<std::uint64_t, 3>{4, 4, 4}));
}

TEST(Refine, TwoSeparatedBlobsYieldTwoBoxes) {
  Array3f density(32, 32, 32, 1.0f);
  auto blob = [&](std::uint64_t cz, std::uint64_t cy, std::uint64_t cx) {
    for (std::uint64_t z = cz; z < cz + 4; ++z) {
      for (std::uint64_t y = cy; y < cy + 4; ++y) {
        for (std::uint64_t x = cx; x < cx + 4; ++x) {
          density.at(z, y, x) = 9.0f;
        }
      }
    }
  };
  blob(2, 2, 2);
  blob(24, 24, 24);
  auto boxes = cluster_flags(flag_overdense(density, 4.0), RefineParams{});
  EXPECT_EQ(boxes.size(), 2u);
  // Together they must cover exactly the flagged cells (128).
  std::uint64_t covered = 0;
  for (const auto& b : boxes) covered += b.cells();
  EXPECT_GE(covered, 128u);
  EXPECT_LE(covered, 256u);  // boxes stay tight
}

TEST(Refine, NoFlagsNoBoxes) {
  Array3f density(8, 8, 8, 1.0f);
  auto boxes = cluster_flags(flag_overdense(density, 4.0), RefineParams{});
  EXPECT_TRUE(boxes.empty());
}

TEST(Refine, MakeChildGeometryAndResolution) {
  GridDescriptor parent;
  parent.id = 0;
  parent.dims = {16, 16, 16};
  CellBox box;
  box.start = {4, 0, 8};
  box.count = {4, 8, 4};
  GridDescriptor child = make_child(parent, {0, 0, 0}, box, 2);
  EXPECT_EQ(child.level, 1);
  EXPECT_EQ(child.dims, (std::array<std::uint64_t, 3>{8, 16, 8}));
  EXPECT_DOUBLE_EQ(child.left_edge[0], 4.0 / 16.0);
  EXPECT_DOUBLE_EQ(child.right_edge[0], 8.0 / 16.0);
  // Child cell width is half the parent's.
  EXPECT_DOUBLE_EQ(child.cell_width(0), parent.cell_width(0) / 2.0);
}

TEST(LoadBalance, GreedyIsBalancedAndDeterministic) {
  std::vector<std::uint64_t> w = {100, 90, 50, 50, 40, 30, 20, 10, 5, 5};
  auto o1 = balance_greedy(w, 3);
  auto o2 = balance_greedy(w, 3);
  EXPECT_EQ(o1, o2);
  std::vector<std::uint64_t> load(3, 0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    load[static_cast<std::size_t>(o1[i])] += w[i];
  }
  std::uint64_t total = std::accumulate(w.begin(), w.end(), 0ull);
  auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*mx - *mn, total / 3);  // roughly even
}

TEST(LoadBalance, AssignOwnersSkipsRoot) {
  Hierarchy h;
  h.set_root({8, 8, 8});
  GridDescriptor c;
  c.level = 1;
  c.parent = 0;
  c.left_edge = {0, 0, 0};
  c.right_edge = {0.5, 0.5, 0.5};
  c.dims = {8, 8, 8};
  h.add_grid(c);
  h.add_grid(c);
  auto load = assign_owners(h, 2);
  EXPECT_EQ(load.size(), 2u);
  EXPECT_EQ(load[0] + load[1], 2u * 8 * 8 * 8);
}

TEST(Particles, PackUnpackRoundTrip) {
  ParticleSet p;
  p.resize(3);
  for (std::size_t i = 0; i < 3; ++i) {
    p.id[i] = static_cast<std::int64_t>(100 + i);
    for (int d = 0; d < 3; ++d) {
      p.pos[static_cast<std::size_t>(d)][i] = 0.1 * (i + 1) + 0.01 * d;
      p.vel[static_cast<std::size_t>(d)][i] = -0.2 * (i + 1);
    }
    p.mass[i] = 2.5 * (i + 1);
    p.attr[0][i] = static_cast<float>(i);
    p.attr[1][i] = static_cast<float>(i * i);
  }
  auto bytes = pack_particles(p);
  ParticleSet q;
  unpack_particles(bytes, q);
  EXPECT_EQ(p, q);
}

TEST(Particles, PackSubsetSelects) {
  ParticleSet p;
  p.resize(5);
  for (std::size_t i = 0; i < 5; ++i) p.id[i] = static_cast<std::int64_t>(i);
  auto bytes = pack_particles(p, {1, 3});
  ParticleSet q;
  unpack_particles(bytes, q);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.id[0], 1);
  EXPECT_EQ(q.id[1], 3);
}

TEST(Particles, LocalSortByIdPermutesAllArrays) {
  ParticleSet p;
  p.resize(4);
  p.id = {30, 10, 40, 20};
  for (std::size_t i = 0; i < 4; ++i) {
    p.mass[i] = static_cast<double>(p.id[i]);
    p.attr[0][i] = static_cast<float>(p.id[i]);
  }
  local_sort_by_id(p);
  EXPECT_EQ(p.id, (std::vector<std::int64_t>{10, 20, 30, 40}));
  EXPECT_DOUBLE_EQ(p.mass[0], 10.0);
  EXPECT_FLOAT_EQ(p.attr[0][3], 40.0f);
}

TEST(Particles, RankOfPositionMatchesBlockOwnership) {
  std::array<std::uint64_t, 3> dims{16, 16, 16};
  auto grid = make_proc_grid(8);
  // For every rank, the centre of its block must map back to it.
  for (int r = 0; r < 8; ++r) {
    BlockExtent e = block_of(dims, grid, r);
    std::array<double, 3> centre;
    for (int d = 0; d < 3; ++d) {
      auto u = static_cast<std::size_t>(d);
      centre[u] = (static_cast<double>(e.start[u]) +
                   static_cast<double>(e.count[u]) / 2.0) /
                  static_cast<double>(dims[u]);
    }
    EXPECT_EQ(rank_of_position(centre, dims, grid), r);
  }
}

}  // namespace
}  // namespace paramrio::amr
