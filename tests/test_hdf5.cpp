// Unit + integration tests for the HDF5-analogue: dataspaces, hyperslabs,
// serial and parallel drivers, and the four modelled overhead sources.
#include <gtest/gtest.h>

#include <cstring>

#include "hdf5/h5_file.hpp"
#include "pfs/local_fs.hpp"

namespace paramrio::hdf5 {
namespace {

using mpi::Comm;
using mpi::Runtime;
using mpi::RuntimeParams;

RuntimeParams rparams(int n) {
  RuntimeParams p;
  p.nprocs = n;
  return p;
}

std::vector<std::byte> seq_f64(std::size_t n, double base = 0.0) {
  std::vector<std::byte> v(n * 8);
  for (std::size_t i = 0; i < n; ++i) {
    double d = base + static_cast<double>(i);
    std::memcpy(v.data() + i * 8, &d, 8);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Dataspace / hyperslab
// ---------------------------------------------------------------------------

TEST(Dataspace, DefaultsToAllSelected) {
  Dataspace s({4, 5});
  EXPECT_EQ(s.total_elements(), 20u);
  EXPECT_EQ(s.selected_elements(), 20u);
  EXPECT_TRUE(s.is_all_selected());
  auto runs = s.runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].element_offset, 0u);
  EXPECT_EQ(runs[0].element_count, 20u);
}

TEST(Dataspace, BlockSelection2D) {
  Dataspace s({4, 6});
  s.select_block({1, 2}, {2, 3});
  EXPECT_EQ(s.selected_elements(), 6u);
  auto runs = s.runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].element_offset, 1u * 6 + 2);
  EXPECT_EQ(runs[0].element_count, 3u);
  EXPECT_EQ(runs[1].element_offset, 2u * 6 + 2);
}

TEST(Dataspace, FullRowsCoalesce) {
  Dataspace s({4, 6});
  s.select_block({1, 0}, {2, 6});
  auto runs = s.runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].element_offset, 6u);
  EXPECT_EQ(runs[0].element_count, 12u);
}

TEST(Dataspace, StridedHyperslab) {
  Dataspace s({10});
  s.select_hyperslab({HyperslabDim{1, 3, 3, 2}});  // [1,2],[4,5],[7,8]
  EXPECT_EQ(s.selected_elements(), 6u);
  auto runs = s.runs();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].element_offset, 1u);
  EXPECT_EQ(runs[0].element_count, 2u);
  EXPECT_EQ(runs[2].element_offset, 7u);
}

TEST(Dataspace, AdjacentStrideBlocksMerge) {
  Dataspace s({12});
  s.select_hyperslab({HyperslabDim{0, 4, 3, 4}});  // stride == block
  auto runs = s.runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].element_count, 12u);
}

TEST(Dataspace, HyperslabValidation) {
  Dataspace s({8, 8});
  EXPECT_THROW(s.select_hyperslab({HyperslabDim{0, 1, 9, 1}}), LogicError);
  EXPECT_THROW(
      s.select_hyperslab({HyperslabDim{0, 1, 8, 1}, HyperslabDim{7, 1, 2, 1}}),
      LogicError);
  EXPECT_THROW(
      s.select_hyperslab({HyperslabDim{0, 1, 1, 2}, HyperslabDim{0, 1, 1, 1}}),
      LogicError);  // stride < block
  EXPECT_THROW(s.select_block({0}, {1}), LogicError);  // rank mismatch
}

TEST(Dataspace, RecursionStepsGrowWithSelectionFragmentation) {
  // Same element count (64), different fragmentation: a row is one run, a
  // column is 64 one-element runs and costs more iterator steps.
  Dataspace coarse({64, 64});
  coarse.select_block({0, 0}, {1, 64});  // one full row
  Dataspace fine({64, 64});
  fine.select_block({0, 0}, {64, 1});  // one element per row
  std::uint64_t coarse_steps = coarse.for_each_run([](const auto&) {});
  std::uint64_t fine_steps = fine.for_each_run([](const auto&) {});
  EXPECT_GT(fine_steps, coarse_steps);
}

TEST(Dataspace, ThreeDBlockMatchesManualIndexing) {
  Dataspace s({4, 4, 4});
  s.select_block({1, 2, 1}, {2, 2, 2});
  auto runs = s.runs();
  ASSERT_EQ(runs.size(), 4u);
  auto lin = [](std::uint64_t z, std::uint64_t y, std::uint64_t x) {
    return (z * 4 + y) * 4 + x;
  };
  EXPECT_EQ(runs[0].element_offset, lin(1, 2, 1));
  EXPECT_EQ(runs[1].element_offset, lin(1, 3, 1));
  EXPECT_EQ(runs[2].element_offset, lin(2, 2, 1));
  EXPECT_EQ(runs[3].element_offset, lin(2, 3, 1));
}

// ---------------------------------------------------------------------------
// Serial driver
// ---------------------------------------------------------------------------

TEST(H5FileSerial, CreateWriteReopenRead) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm&) {
    auto data = seq_f64(27, 100.0);
    {
      H5File f = H5File::create(fs, "out.h5");
      Dataset d =
          f.create_dataset("density", NumberType::kFloat64, Dataspace({3, 3, 3}));
      d.write_all(data);
      d.close();
      double t = 0.5;
      f.write_attribute("time", std::as_bytes(std::span(&t, 1)));
      f.close();
    }
    {
      H5File f = H5File::open(fs, "out.h5");
      ASSERT_TRUE(f.has_dataset("density"));
      Dataset d = f.open_dataset("density");
      EXPECT_EQ(d.info().dims, (std::vector<std::uint64_t>{3, 3, 3}));
      std::vector<std::byte> out(27 * 8);
      d.read_all(out);
      EXPECT_EQ(out, data);
      auto attr = f.read_attribute("time");
      double t;
      std::memcpy(&t, attr.data(), 8);
      EXPECT_DOUBLE_EQ(t, 0.5);
      f.close();
    }
  });
}

TEST(H5FileSerial, HyperslabPartialWriteRead) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm&) {
    H5File f = H5File::create(fs, "x.h5");
    Dataset d = f.create_dataset("a", NumberType::kFloat64, Dataspace({4, 4}));
    d.write_all(seq_f64(16));
    // Overwrite the 2x2 centre.
    Dataspace sel({4, 4});
    sel.select_block({1, 1}, {2, 2});
    d.write(sel, seq_f64(4, 1000.0));
    // Read a column through the centre.
    Dataspace col({4, 4});
    col.select_block({0, 2}, {4, 1});
    std::vector<std::byte> out(4 * 8);
    d.read(col, out);
    double v[4];
    std::memcpy(v, out.data(), 32);
    EXPECT_DOUBLE_EQ(v[0], 2.0);     // untouched row 0
    EXPECT_DOUBLE_EQ(v[1], 1001.0);  // centre write [1][2] = 1000+1
    EXPECT_DOUBLE_EQ(v[2], 1003.0);  // centre write [2][2] = 1000+3
    EXPECT_DOUBLE_EQ(v[3], 14.0);    // untouched row 3
    d.close();
    f.close();
  });
}

TEST(H5FileSerial, MultipleDatasetsChainAcrossReopen) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm&) {
    {
      H5File f = H5File::create(fs, "m.h5");
      for (int i = 0; i < 8; ++i) {
        Dataset d = f.create_dataset("ds" + std::to_string(i),
                                     NumberType::kFloat64, Dataspace({16}));
        d.write_all(seq_f64(16, i * 100.0));
        d.close();
      }
      f.close();
    }
    H5File f = H5File::open(fs, "m.h5");
    EXPECT_EQ(f.dataset_names().size(), 8u);
    for (int i = 0; i < 8; ++i) {
      Dataset d = f.open_dataset("ds" + std::to_string(i));
      std::vector<std::byte> out(16 * 8);
      d.read_all(out);
      double v;
      std::memcpy(&v, out.data(), 8);
      EXPECT_DOUBLE_EQ(v, i * 100.0);
    }
    f.close();
  });
}

TEST(H5FileSerial, BufferSizeValidation) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm&) {
    H5File f = H5File::create(fs, "v.h5");
    Dataset d = f.create_dataset("a", NumberType::kFloat32, Dataspace({8}));
    EXPECT_THROW(d.write_all(std::vector<std::byte>(31)), LogicError);
    Dataspace wrong({9});
    EXPECT_THROW(d.write(wrong, std::vector<std::byte>(36)), LogicError);
    f.close();
  });
}

TEST(H5FileSerial, AlignmentPlacesDataOnBoundary) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm&) {
    FileConfig cfg;
    cfg.alignment = 64 * KiB;
    H5File f = H5File::create(fs, "a.h5", cfg);
    Dataset d = f.create_dataset("x", NumberType::kFloat64, Dataspace({100}));
    EXPECT_EQ(d.info().data_addr % (64 * KiB), 0u);
    d.write_all(seq_f64(100));
    f.close();

    // Unaligned default: data starts right after the object header.
    H5File g = H5File::create(fs, "b.h5");
    Dataset e = g.create_dataset("x", NumberType::kFloat64, Dataspace({100}));
    EXPECT_NE(e.info().data_addr % (64 * KiB), 0u);
    g.close();
  });
}

// ---------------------------------------------------------------------------
// Parallel driver
// ---------------------------------------------------------------------------

class H5ParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(H5ParallelSweep, BlockPartitionedCollectiveWrite) {
  const int p = GetParam();
  const std::uint64_t n = 16;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(p));
  rt.run([&](Comm& c) {
    FileConfig cfg;
    cfg.comm = &c;
    H5File f = H5File::create(fs, "par.h5", cfg);
    Dataset d =
        f.create_dataset("a", NumberType::kFloat64, Dataspace({n, n}));
    // Partition the middle: rank r writes rows [r*n/p, ...).
    std::uint64_t rows = n / static_cast<std::uint64_t>(p);
    std::uint64_t r0 = rows * static_cast<std::uint64_t>(c.rank());
    Dataspace sel({n, n});
    sel.select_block({r0, 0}, {rows, n});
    d.write(sel, seq_f64(rows * n, static_cast<double>(c.rank()) * 1.0e6));
    d.close();
    f.close();

    // Re-open in parallel and read the transpose partition (columns).
    H5File g = H5File::open(fs, "par.h5", cfg);
    Dataset e = g.open_dataset("a");
    std::uint64_t cols = n / static_cast<std::uint64_t>(p);
    std::uint64_t c0 = cols * static_cast<std::uint64_t>(c.rank());
    Dataspace csel({n, n});
    csel.select_block({0, c0}, {n, cols});
    std::vector<std::byte> out(n * cols * 8);
    e.read(csel, out);
    // Element (row, col) was written by rank row/rows with value
    // rank*1e6 + (row%rows)*n + col.
    std::size_t k = 0;
    for (std::uint64_t row = 0; row < n; ++row) {
      for (std::uint64_t col = c0; col < c0 + cols; ++col) {
        double expect = static_cast<double>(row / rows) * 1.0e6 +
                        static_cast<double>((row % rows) * n + col);
        double v;
        std::memcpy(&v, out.data() + k * 8, 8);
        EXPECT_DOUBLE_EQ(v, expect);
        ++k;
      }
    }
    e.close();
    g.close();
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, H5ParallelSweep, ::testing::Values(1, 2, 4, 8));

TEST(H5Parallel, IndependentTransferModeAlsoCorrect) {
  const int p = 4;
  const std::uint64_t n = 8;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(p));
  rt.run([&](Comm& c) {
    FileConfig cfg;
    cfg.comm = &c;
    H5File f = H5File::create(fs, "ind.h5", cfg);
    Dataset d = f.create_dataset("a", NumberType::kFloat64, Dataspace({n, n}));
    std::uint64_t rows = n / static_cast<std::uint64_t>(p);
    Dataspace sel({n, n});
    sel.select_block({rows * static_cast<std::uint64_t>(c.rank()), 0},
                     {rows, n});
    d.write(sel, seq_f64(rows * n, c.rank() * 100.0), /*collective=*/false);
    c.barrier();
    std::vector<std::byte> out(rows * n * 8);
    d.read(sel, out, /*collective=*/false);
    EXPECT_EQ(out, seq_f64(rows * n, c.rank() * 100.0));
    d.close();
    f.close();
  });
}

TEST(H5Parallel, MetadataSyncCostsShowUp) {
  // Creating many datasets with metadata_sync on must cost more wall time
  // than with it off (the paper's dataset create/close overhead).
  auto run_with = [](bool sync) {
    pfs::LocalFs fs(pfs::LocalFsParams{});
    Runtime rt(rparams(8));
    auto res = rt.run([&](Comm& c) {
      FileConfig cfg;
      cfg.comm = &c;
      cfg.metadata_sync = sync;
      H5File f = H5File::create(fs, "s.h5", cfg);
      for (int i = 0; i < 16; ++i) {
        Dataset d = f.create_dataset("d" + std::to_string(i),
                                     NumberType::kFloat64, Dataspace({8}));
        d.close();
      }
      f.close();
    });
    return res.makespan;
  };
  EXPECT_GT(run_with(true), run_with(false));
}

TEST(H5Parallel, Rank0AttributeSerialisation) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(4));
  rt.run([&](Comm& c) {
    FileConfig cfg;
    cfg.comm = &c;
    H5File f = H5File::create(fs, "attr.h5", cfg);
    double t = 3.5;
    f.write_attribute("time", std::as_bytes(std::span(&t, 1)));
    auto back = f.read_attribute("time");
    double v;
    std::memcpy(&v, back.data(), 8);
    EXPECT_DOUBLE_EQ(v, 3.5);
    f.close();
  });
  // Physically present exactly once (rank 0's write).
  sim::Engine::Options o;
  o.nprocs = 1;
  sim::Engine::run(o, [&](sim::Proc&) {
    H5File f = H5File::open(fs, "attr.h5");
    EXPECT_EQ(f.read_attribute("time").size(), 8u);
    f.close();
  });
}

TEST(H5Parallel, AlignmentReducesWriteTimeOnStripedLayout) {
  // With tiny stripes and misaligned data, large writes straddle more
  // boundaries; alignment must not be slower.
  auto run_with = [](std::uint64_t alignment) {
    pfs::LocalFsParams fp;
    fp.stripe_size = 64 * KiB;
    fp.disk.seek_time = ms(10);
    pfs::LocalFs fs(fp);
    Runtime rt(rparams(4));
    auto res = rt.run([&](Comm& c) {
      FileConfig cfg;
      cfg.comm = &c;
      cfg.alignment = alignment;
      H5File f = H5File::create(fs, "al.h5", cfg);
      Dataset d = f.create_dataset("a", NumberType::kFloat64,
                                   Dataspace({64, 64, 64}));
      Dataspace sel({64, 64, 64});
      std::uint64_t rows = 16;
      sel.select_block({rows * static_cast<std::uint64_t>(c.rank()), 0, 0},
                       {rows, 64, 64});
      d.write(sel, seq_f64(rows * 64 * 64));
      d.close();
      f.close();
    });
    return res.makespan;
  };
  EXPECT_LE(run_with(64 * KiB), run_with(1) * 1.05);
}


TEST(H5Interop, ParallelWriteSerialRead) {
  // Files written through the parallel driver must be readable through the
  // serial driver (same on-disk format).
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(4));
  rt.run([&](Comm& c) {
    FileConfig cfg;
    cfg.comm = &c;
    H5File f = H5File::create(fs, "interop.h5", cfg);
    Dataset d = f.create_dataset("a", NumberType::kFloat64, Dataspace({8, 8}));
    Dataspace sel({8, 8});
    sel.select_block({static_cast<std::uint64_t>(c.rank()) * 2, 0}, {2, 8});
    d.write(sel, seq_f64(16, c.rank() * 100.0));
    d.close();
    double t = 9.5;
    f.write_attribute("time", std::as_bytes(std::span(&t, 1)));
    f.close();
  });
  sim::Engine::Options o;
  o.nprocs = 1;
  sim::Engine::run(o, [&](sim::Proc&) {
    H5File f = H5File::open(fs, "interop.h5");  // serial driver
    Dataset d = f.open_dataset("a");
    std::vector<std::byte> out(64 * 8);
    d.read_all(out);
    for (int r = 0; r < 4; ++r) {
      double v;
      std::memcpy(&v, out.data() + static_cast<std::size_t>(r) * 16 * 8, 8);
      EXPECT_DOUBLE_EQ(v, r * 100.0);
    }
    auto att = f.read_attribute("time");
    double t;
    std::memcpy(&t, att.data(), 8);
    EXPECT_DOUBLE_EQ(t, 9.5);
    f.close();
  });
}

TEST(H5Interop, SerialWriteParallelRead) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::Options o;
  o.nprocs = 1;
  sim::Engine::run(o, [&](sim::Proc&) {
    H5File f = H5File::create(fs, "sw.h5");
    Dataset d = f.create_dataset("a", NumberType::kFloat64, Dataspace({4, 4}));
    d.write_all(seq_f64(16, 50.0));
    f.close();
  });
  Runtime rt(rparams(2));
  rt.run([&](Comm& c) {
    FileConfig cfg;
    cfg.comm = &c;
    H5File f = H5File::open(fs, "sw.h5", cfg);
    Dataset d = f.open_dataset("a");
    Dataspace sel({4, 4});
    sel.select_block({static_cast<std::uint64_t>(c.rank()) * 2, 0}, {2, 4});
    std::vector<std::byte> out(8 * 8);
    d.read(sel, out, /*collective=*/true);
    double v;
    std::memcpy(&v, out.data(), 8);
    EXPECT_DOUBLE_EQ(v, 50.0 + c.rank() * 8);
    d.close();
    f.close();
  });
}

}  // namespace
}  // namespace paramrio::hdf5
