// Unit tests for the HDF4-style serial SD file format.
#include <gtest/gtest.h>

#include <cstring>

#include "hdf4/sd_file.hpp"
#include "pfs/local_fs.hpp"
#include "sim/engine.hpp"

namespace paramrio::hdf4 {
namespace {

sim::Engine::Options opts(int n) {
  sim::Engine::Options o;
  o.nprocs = n;
  return o;
}

std::vector<std::byte> float_data(std::size_t n, float base = 0.0f) {
  std::vector<std::byte> v(n * 4);
  for (std::size_t i = 0; i < n; ++i) {
    float f = base + static_cast<float>(i) * 0.5f;
    std::memcpy(v.data() + i * 4, &f, 4);
  }
  return v;
}

TEST(ElementSize, AllTypes) {
  EXPECT_EQ(element_size(NumberType::kFloat32), 4u);
  EXPECT_EQ(element_size(NumberType::kFloat64), 8u);
  EXPECT_EQ(element_size(NumberType::kInt32), 4u);
  EXPECT_EQ(element_size(NumberType::kInt64), 8u);
}

TEST(SdFile, WriteAndReadBackAfterReopen) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    auto d1 = float_data(64, 1.0f);
    auto d2 = float_data(27, 2.0f);
    {
      SdFile f = SdFile::create(fs, "grid0001");
      f.write_dataset("density", NumberType::kFloat32, {4, 4, 4}, d1);
      f.write_dataset("energy", NumberType::kFloat32, {3, 3, 3}, d2);
      f.close();
    }
    {
      SdFile f = SdFile::open(fs, "grid0001");
      EXPECT_TRUE(f.has_dataset("density"));
      EXPECT_TRUE(f.has_dataset("energy"));
      EXPECT_FALSE(f.has_dataset("nope"));
      EXPECT_EQ(f.dataset_names(),
                (std::vector<std::string>{"density", "energy"}));
      const SdsInfo& i = f.info("density");
      EXPECT_EQ(i.dims, (std::vector<std::uint64_t>{4, 4, 4}));
      EXPECT_EQ(i.element_count(), 64u);
      std::vector<std::byte> out(i.data_bytes);
      f.read_dataset("density", out);
      EXPECT_EQ(out, d1);
      std::vector<std::byte> out2(f.info("energy").data_bytes);
      f.read_dataset("energy", out2);
      EXPECT_EQ(out2, d2);
      f.close();
    }
  });
}

TEST(SdFile, AttributesSurviveReopen) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    {
      SdFile f = SdFile::create(fs, "g");
      double t = 13.25;
      f.write_attribute("time", std::as_bytes(std::span(&t, 1)));
      f.write_dataset("d", NumberType::kFloat64, {2},
                      std::vector<std::byte>(16));
      f.write_attribute("cycle", std::as_bytes(std::span("42", 2)));
      f.close();
    }
    {
      SdFile f = SdFile::open(fs, "g");
      auto tv = f.read_attribute("time");
      double t;
      ASSERT_EQ(tv.size(), 8u);
      std::memcpy(&t, tv.data(), 8);
      EXPECT_DOUBLE_EQ(t, 13.25);
      EXPECT_EQ(f.read_attribute("cycle").size(), 2u);
      EXPECT_THROW(f.read_attribute("absent"), IoError);
      f.close();
    }
  });
}

TEST(SdFile, SizeMismatchRejected) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    SdFile f = SdFile::create(fs, "g");
    EXPECT_THROW(f.write_dataset("d", NumberType::kFloat32, {4, 4},
                                 std::vector<std::byte>(63)),
                 LogicError);
    f.close();
  });
}

TEST(SdFile, DuplicateDatasetRejected) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    SdFile f = SdFile::create(fs, "g");
    f.write_dataset("d", NumberType::kInt32, {2}, std::vector<std::byte>(8));
    EXPECT_THROW(f.write_dataset("d", NumberType::kInt32, {2},
                                 std::vector<std::byte>(8)),
                 LogicError);
    f.close();
  });
}

TEST(SdFile, ReadOnlyCannotWrite) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    {
      SdFile f = SdFile::create(fs, "g");
      f.close();
    }
    SdFile f = SdFile::open(fs, "g");
    EXPECT_THROW(f.write_dataset("d", NumberType::kInt32, {1},
                                 std::vector<std::byte>(4)),
                 LogicError);
    f.close();
  });
}

TEST(SdFile, CorruptMagicRejected) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int fd = fs.open("bad", pfs::OpenMode::kCreate);
    std::vector<std::byte> junk(64, std::byte{0x5A});
    fs.write_at(fd, 0, junk);
    fs.close(fd);
    EXPECT_THROW(SdFile::open(fs, "bad"), FormatError);
  });
}

TEST(SdFile, TruncatedFileRejected) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int fd = fs.open("tiny", pfs::OpenMode::kCreate);
    std::vector<std::byte> four(4);
    fs.write_at(fd, 0, four);
    fs.close(fd);
    EXPECT_THROW(SdFile::open(fs, "tiny"), FormatError);
  });
}

TEST(SdFile, ManyDatasetsDirectoryOrder) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    {
      SdFile f = SdFile::create(fs, "g");
      for (int i = 0; i < 20; ++i) {
        f.write_dataset("field" + std::to_string(i), NumberType::kFloat32,
                        {8}, float_data(8, static_cast<float>(i)));
      }
      f.close();
    }
    SdFile f = SdFile::open(fs, "g");
    auto names = f.dataset_names();
    ASSERT_EQ(names.size(), 20u);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(names[static_cast<std::size_t>(i)],
                "field" + std::to_string(i));
      std::vector<std::byte> out(32);
      f.read_dataset(names[static_cast<std::size_t>(i)], out);
      float v;
      std::memcpy(&v, out.data(), 4);
      EXPECT_FLOAT_EQ(v, static_cast<float>(i));
    }
    f.close();
  });
}

}  // namespace
}  // namespace paramrio::hdf4
