// Unit tests for the simulated parallel file systems: data correctness,
// descriptor semantics, and the timing behaviours the paper's figures hinge
// on (stripe parallelism, per-request overheads, SMP channel queueing,
// local-disk scaling).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pfs/local_disk_fs.hpp"
#include "pfs/local_fs.hpp"
#include "pfs/striped_fs.hpp"
#include "pfs/striping.hpp"
#include "sim/engine.hpp"

namespace paramrio {
namespace {

using pfs::OpenMode;
using sim::Engine;
using sim::Proc;

Engine::Options opts(int n) {
  Engine::Options o;
  o.nprocs = n;
  return o;
}

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  return v;
}

TEST(Striping, ChunkDecomposition) {
  std::vector<pfs::StripeChunk> chunks;
  pfs::for_each_stripe_chunk(100, 250, /*stripe=*/128, /*servers=*/3,
                             [&](const pfs::StripeChunk& c) {
                               chunks.push_back(c);
                             });
  // [100,350) over 128-byte stripes: [100,128)=28 on s0, [128,256)=128 on s1,
  // [256,350)=94 on s2.
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].server, 0);
  EXPECT_EQ(chunks[0].length, 28u);
  EXPECT_EQ(chunks[0].server_offset, 100u);
  EXPECT_EQ(chunks[1].server, 1);
  EXPECT_EQ(chunks[1].length, 128u);
  EXPECT_EQ(chunks[1].server_offset, 0u);
  EXPECT_EQ(chunks[2].server, 2);
  EXPECT_EQ(chunks[2].length, 94u);
  EXPECT_EQ(chunks[2].server_offset, 0u);
}

TEST(Striping, ServerOffsetsPreserveSequentiality) {
  // Full scan: per-server offsets must be contiguous in server space.
  std::uint64_t next_off_per_server[4] = {0, 0, 0, 0};
  pfs::for_each_stripe_chunk(0, 4096, 256, 4, [&](const pfs::StripeChunk& c) {
    EXPECT_EQ(c.server_offset,
              next_off_per_server[static_cast<std::size_t>(c.server)]);
    next_off_per_server[static_cast<std::size_t>(c.server)] += c.length;
  });
}

TEST(LocalFs, WriteReadRoundTrip) {
  pfs::LocalFsParams p;
  pfs::LocalFs fs(p);
  Engine::run(opts(1), [&](Proc&) {
    int fd = fs.open("file", OpenMode::kCreate);
    auto data = pattern(10000);
    fs.write_at(fd, 123, data);
    std::vector<std::byte> out(10000);
    fs.read_at(fd, 123, out);
    EXPECT_EQ(out, data);
    EXPECT_EQ(fs.size(fd), 10123u);
    fs.close(fd);
  });
}

TEST(LocalFs, BadDescriptorAndModeChecks) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Engine::run(opts(1), [&](Proc&) {
    EXPECT_THROW(fs.open("absent", OpenMode::kRead), IoError);
    int fd = fs.open("f", OpenMode::kCreate);
    fs.close(fd);
    std::vector<std::byte> b(1);
    EXPECT_THROW(fs.read_at(fd, 0, b), IoError);
    int rd = fs.open("f", OpenMode::kRead);
    EXPECT_THROW(fs.write_at(rd, 0, b), IoError);
  });
}

TEST(LocalFs, CreateTruncatesExisting) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Engine::run(opts(1), [&](Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 0, pattern(100));
    fs.close(fd);
    int fd2 = fs.open("f", OpenMode::kCreate);
    EXPECT_EQ(fs.size(fd2), 0u);
    fs.close(fd2);
  });
}

TEST(LocalFs, CloseUnknownFdThrowsWithContext) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Engine::run(opts(1), [&](Proc&) {
    try {
      fs.close(77);
      FAIL() << "close(77) should throw";
    } catch (const IoError& e) {
      std::string what = e.what();
      EXPECT_NE(what.find("close"), std::string::npos) << what;
      EXPECT_NE(what.find("77"), std::string::npos) << what;
      EXPECT_NE(what.find("xfs"), std::string::npos) << what;
    }
  });
}

TEST(LocalFs, ReadPastEofThrowsWithContext) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Engine::run(opts(1), [&](Proc&) {
    int fd = fs.open("short", OpenMode::kCreate);
    fs.write_at(fd, 0, pattern(100));
    std::vector<std::byte> out(50);
    fs.read_at(fd, 50, out);  // exactly at EOF: fine
    try {
      fs.read_at(fd, 51, out);
      FAIL() << "read past EOF should throw";
    } catch (const IoError& e) {
      std::string what = e.what();
      EXPECT_NE(what.find("short"), std::string::npos) << what;
      EXPECT_NE(what.find("EOF"), std::string::npos) << what;
      EXPECT_NE(what.find(std::to_string(fd)), std::string::npos) << what;
    }
    fs.close(fd);
  });
}

// Regression: remove() used to leave the removed path's cached intervals in
// the buffer-cache model, so a file re-created at the same path saw false
// cache hits for data the new file never touched.
TEST(LocalFs, RemoveDropsCachedIntervals) {
  pfs::LocalFs fs(pfs::LocalFsParams{});  // LocalFs enables the cache
  Engine::run(opts(1), [&](Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 0, pattern(4096));  // populates cache [0, 4096)
    fs.close(fd);
    fs.remove("f");

    // New file at the same path: [0, 4096) is zero-fill the new file never
    // wrote, but the old file's cached interval covered it.
    int fd2 = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd2, 8192, pattern(100));  // zero-fills [0, 8192), uncached
    std::uint64_t hits_before = fs.cache_hits();
    std::vector<std::byte> out(2048);
    fs.read_at(fd2, 0, out);
    EXPECT_EQ(fs.cache_hits(), hits_before);  // must be a miss
    fs.close(fd2);
  });
}

// The same stale-cache hazard via open(kCreate) truncation instead of
// remove().
TEST(LocalFs, CreateTruncationDropsCachedIntervals) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Engine::run(opts(1), [&](Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 0, pattern(4096));  // caches [0, 4096)
    fs.close(fd);
    int fd2 = fs.open("f", OpenMode::kCreate);  // truncates
    fs.write_at(fd2, 4096, pattern(100));       // zero-fills [0, 4096)
    std::uint64_t hits_before = fs.cache_hits();
    std::vector<std::byte> out(1024);
    fs.read_at(fd2, 0, out);
    EXPECT_EQ(fs.cache_hits(), hits_before);  // stale interval must be gone
    fs.close(fd2);
  });
}

TEST(LocalFs, ConcurrentDisjointAccessScalesAcrossDisks) {
  // One proc writing 8 MB vs 8 procs writing 1 MB each to disjoint stripes:
  // the striped volume should serve the parallel case faster than 8x serial.
  pfs::LocalFsParams p;
  p.n_disks = 8;
  p.stripe_size = MiB;

  pfs::LocalFs fs_serial(p);
  auto serial = Engine::run(opts(1), [&](Proc&) {
    int fd = fs_serial.open("f", OpenMode::kCreate);
    auto data = pattern(8 * MiB);
    fs_serial.write_at(fd, 0, data);
    fs_serial.close(fd);
  });

  pfs::LocalFs fs_par(p);
  int fd = fs_par.open("f", OpenMode::kCreate);  // outside the sim: untimed
  auto par = Engine::run(opts(8), [&](Proc& proc) {
    auto data = pattern(MiB);
    fs_par.write_at(fd, static_cast<std::uint64_t>(proc.rank()) * MiB, data);
  });

  // Both should beat a single-spindle time; the parallel run must not be
  // slower than the serial one (both stripe over all 8 disks).
  EXPECT_LE(par.makespan, serial.makespan * 1.5);
}

TEST(StripedFs, RoundTripAndRequestCounting) {
  net::NetworkParams np;
  np.bandwidth = mb_per_s(100);
  pfs::StripedFsParams sp;
  sp.stripe_size = 4 * KiB;
  sp.n_io_nodes = 4;
  net::Network nw(np, 2, sp.n_io_nodes);
  pfs::StripedFs fs(sp, nw);
  Engine::run(opts(2), [&](Proc& proc) {
    if (proc.rank() == 0) {
      int fd = fs.open("f", OpenMode::kCreate);
      auto data = pattern(64 * KiB);
      fs.write_at(fd, 0, data);
      std::vector<std::byte> out(64 * KiB);
      fs.read_at(fd, 0, out);
      EXPECT_EQ(out, data);
      fs.close(fd);
    }
  });
  // 64 KiB over 4 KiB stripes = 16 chunks per op, 2 ops.
  EXPECT_EQ(fs.total_server_requests(), 32u);
}

TEST(Layout, StripedFsReportsGeometryOthersReportUnstriped) {
  // The layout() query behind cb_align=auto: StripedFs exposes its stripe
  // unit, server count, and the object's deterministic first server;
  // LocalFs and LocalDiskFs report an unstriped layout (stripe_size 0), so
  // layout-aware clients fall back to classic domains on them.
  net::NetworkParams np;
  pfs::StripedFsParams sp;
  sp.stripe_size = 256 * KiB;
  sp.n_io_nodes = 12;
  net::Network nw(np, 1, sp.n_io_nodes);
  pfs::StripedFs striped(sp, nw);
  pfs::Layout l = striped.layout("dump/grid0001");
  EXPECT_TRUE(l.striped());
  EXPECT_EQ(l.stripe_size, 256 * KiB);
  EXPECT_EQ(l.n_servers, 12);
  EXPECT_EQ(l.first_server,
            pfs::object_first_server("dump/grid0001", 12));
  // Different objects may start on different servers, same geometry.
  pfs::Layout l2 = striped.layout("dump/grid0002");
  EXPECT_EQ(l2.stripe_size, l.stripe_size);
  EXPECT_EQ(l2.n_servers, l.n_servers);

  pfs::LocalFs local(pfs::LocalFsParams{});
  EXPECT_FALSE(local.layout("x").striped());
  EXPECT_EQ(local.layout("x").stripe_size, 0u);

  pfs::LocalDiskFs per_node(pfs::LocalDiskFsParams{}, 4);
  pfs::Layout ld = per_node.layout("x");
  EXPECT_FALSE(ld.striped());  // no offset->server mapping to align to
  EXPECT_EQ(ld.n_servers, 4);
}

TEST(StripedFs, SmallStridedRequestsCostMoreThanOneLargeRequest) {
  auto run_with = [](std::uint64_t chunk, int nchunks) {
    net::NetworkParams np;
    pfs::StripedFsParams sp;
    sp.stripe_size = 256 * KiB;
    sp.n_io_nodes = 4;
    net::Network nw(np, 1, sp.n_io_nodes);
    pfs::StripedFs fs(sp, nw);
    auto r = Engine::run(opts(1), [&](Proc&) {
      int fd = fs.open("f", OpenMode::kCreate);
      auto data = pattern(chunk);
      for (int i = 0; i < nchunks; ++i) {
        // stride 2x chunk: never sequential
        fs.write_at(fd, static_cast<std::uint64_t>(i) * 2 * chunk, data);
      }
      fs.close(fd);
    });
    return r.makespan;
  };
  double many_small = run_with(8 * KiB, 128);   // 1 MiB total
  double one_large = run_with(MiB, 1);          // 1 MiB total
  EXPECT_GT(many_small, 3.0 * one_large);
}

TEST(StripedFs, SmpChannelSerializesNodeLocalRequests) {
  // 4 procs on ONE SMP node, each writing to a distinct I/O node: without
  // the channel they'd proceed mostly in parallel; with it they queue.
  auto run_with = [](bool smp) {
    net::NetworkParams np;
    np.procs_per_node = 4;
    pfs::StripedFsParams sp;
    sp.stripe_size = MiB;
    sp.n_io_nodes = 4;
    sp.smp_io_channel = smp;
    sp.smp_channel_bandwidth = mb_per_s(50);
    net::Network nw(np, 4, sp.n_io_nodes);
    pfs::StripedFs fs(sp, nw);
    int fd = fs.open("f", OpenMode::kCreate);  // outside the sim: untimed
    auto r = Engine::run(opts(4), [&](Proc& proc) {
      auto data = pattern(MiB);
      fs.write_at(fd, static_cast<std::uint64_t>(proc.rank()) * MiB, data);
    });
    return r.makespan;
  };
  EXPECT_GT(run_with(true), 1.5 * run_with(false));
}

TEST(LocalDiskFs, PerRankDisksScale) {
  auto run_with = [](int nprocs) {
    pfs::LocalDiskFs fs(pfs::LocalDiskFsParams{}, nprocs);
    int fd = fs.open("f", OpenMode::kCreate);  // outside the sim: untimed
    auto r = Engine::run(opts(nprocs), [&](Proc& proc) {
      auto data = pattern(MiB);
      std::uint64_t total = 8 * MiB;
      std::uint64_t share = total / static_cast<std::uint64_t>(proc.nprocs());
      for (std::uint64_t off = 0; off < share; off += MiB) {
        fs.write_at(fd,
                    static_cast<std::uint64_t>(proc.rank()) * share + off,
                    data);
      }
    });
    return r.makespan;
  };
  double t1 = run_with(1);
  double t8 = run_with(8);
  EXPECT_GT(t1, 6.0 * t8);  // near-linear scaling
}

TEST(LocalDiskFs, RemoteReadDetection) {
  pfs::LocalDiskFs fs(pfs::LocalDiskFsParams{}, 2);
  int fd = fs.open("f", OpenMode::kCreate);  // outside the sim: untimed
  Engine::run(opts(2), [&](Proc& proc) {
    if (proc.rank() == 0) {
      fs.write_at(fd, 0, pattern(1000));
    }
    proc.advance(1.0);  // rank 0 writes first
    if (proc.rank() == 0) {
      std::vector<std::byte> out(500);
      fs.read_at(fd, 0, out);  // own data: local
    } else {
      std::vector<std::byte> out(500);
      fs.read_at(fd, 200, out);  // rank 1 reading rank 0's bytes: remote
    }
  });
  EXPECT_EQ(fs.remote_reads(), 1u);
}

// Regression (companion to LocalFs.RemoveDropsCachedIntervals): remove()
// used to clear only the base buffer cache, leaving LocalDiskFs's own
// per-path state — write ownership and per-rank page caches — behind.  A
// file re-created at the same path then inherited the previous generation's
// owners, so reads of zero-fill the new file never wrote looked node-local
// (suppressing remote_reads) and were even served from the stale page cache.
TEST(LocalDiskFs, RemoveDropsOwnershipAndPageCache) {
  pfs::LocalDiskFs fs(pfs::LocalDiskFsParams{}, 1);
  Engine::run(opts(1), [&](Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 0, pattern(4096));  // rank 0 owns + caches [0, 4096)
    fs.close(fd);
    fs.remove("f");

    int fd2 = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd2, 4096, pattern(100));  // zero-fills [0, 4096), unowned
    std::vector<std::byte> out(2048);
    fs.read_at(fd2, 0, out);  // bytes the new file never wrote
    fs.close(fd2);
  });
  // The range is unowned in the new file's generation, so the read must
  // count as remote — stale ownership would have made it look local.
  EXPECT_EQ(fs.remote_reads(), 1u);
}

// The same stale-state hazard via open(kCreate) truncation.
TEST(LocalDiskFs, CreateTruncationDropsOwnershipAndPageCache) {
  pfs::LocalDiskFs fs(pfs::LocalDiskFsParams{}, 1);
  Engine::run(opts(1), [&](Proc&) {
    int fd = fs.open("f", OpenMode::kCreate);
    fs.write_at(fd, 0, pattern(4096));
    fs.close(fd);
    int fd2 = fs.open("f", OpenMode::kCreate);  // truncates
    fs.write_at(fd2, 4096, pattern(100));
    std::vector<std::byte> out(2048);
    fs.read_at(fd2, 0, out);
    fs.close(fd2);
  });
  EXPECT_EQ(fs.remote_reads(), 1u);
}

TEST(LocalDiskFs, OwnershipSplitsOnOverwrite) {
  pfs::LocalDiskFs fs(pfs::LocalDiskFsParams{}, 2);
  int fd = fs.open("f", OpenMode::kCreate);  // outside the sim: untimed
  Engine::run(opts(2), [&](Proc& proc) {
    if (proc.rank() == 0) {
      fs.write_at(fd, 0, pattern(1000));
    }
    proc.advance(1.0);
    if (proc.rank() == 1) {
      fs.write_at(fd, 400, pattern(100));  // take over the middle
    }
    proc.advance(1.0);
    if (proc.rank() == 0) {
      std::vector<std::byte> out(100);
      fs.read_at(fd, 0, out);    // head: still rank 0's — local
      fs.read_at(fd, 450, out);  // middle: now rank 1's — remote
    }
  });
  EXPECT_EQ(fs.remote_reads(), 1u);
}

}  // namespace
}  // namespace paramrio
