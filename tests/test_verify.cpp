// The MPI semantics verifier: every planted defect class is caught with a
// rank-attributed diagnosis, clean ENZO dump/restart runs verify clean on
// all four backends, and the schedule-perturbation differential holds —
// the same program under different (equally legal) engine interleavings
// produces byte-identical dumps and metric exports, with clean check::
// audits and clean verify:: reports under every seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/io_checker.hpp"
#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "harness.hpp"
#include "mpi/io/file.hpp"
#include "pfs/local_fs.hpp"
#include "verify/verify.hpp"

namespace paramrio {
namespace {

using verify::Rule;

mpi::RuntimeParams rparams(int n, std::uint64_t perturb_seed = 0) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  p.perturb_seed = perturb_seed;
  return p;
}

mpi::io::Hints overlap_hints() {
  mpi::io::Hints h;
  h.overlap = true;
  return h;
}

/// First materialised violation of `rule`, or nullptr.
const verify::Violation* find_violation(const verify::Report& r, Rule rule) {
  for (const auto& v : r.violations) {
    if (v.rule == rule) return &v;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Negative matrix: each defect class planted, caught, rank-attributed.
// ---------------------------------------------------------------------------

TEST(VerifyNegative, CollectiveMismatchIsCaught) {
  verify::Verifier v;
  {
    verify::Attach attach(v);
    mpi::Runtime rt(rparams(2));
    try {
      rt.run([](mpi::Comm& c) {
        if (c.rank() == 0) {
          c.barrier();
        } else {
          c.allreduce_sum(std::uint64_t{1});
        }
      });
    } catch (const Error&) {
      // A mismatched pair may also deadlock; the diagnosis is what counts.
    }
  }
  EXPECT_GE(v.report().count(Rule::kCollectiveMismatch), 1u);
  const verify::Violation* viol =
      find_violation(v.report(), Rule::kCollectiveMismatch);
  ASSERT_NE(viol, nullptr);
  EXPECT_FALSE(viol->ranks.empty());
  EXPECT_EQ(viol->object.rfind("comm#", 0), 0u) << viol->object;
  EXPECT_NE(viol->message.find("barrier"), std::string::npos)
      << viol->message;
  EXPECT_FALSE(v.report().clean());
}

TEST(VerifyNegative, RootDivergenceIsCaught) {
  verify::Verifier v;
  {
    verify::Attach attach(v);
    mpi::Runtime rt(rparams(2));
    try {
      rt.run([](mpi::Comm& c) {
        mpi::Bytes b(8, std::byte{1});
        c.bcast(b, c.rank());  // every rank thinks it is the root
      });
    } catch (const Error&) {
    }
  }
  EXPECT_GE(v.report().count(Rule::kRootDivergence), 1u);
  const verify::Violation* viol =
      find_violation(v.report(), Rule::kRootDivergence);
  ASSERT_NE(viol, nullptr);
  EXPECT_FALSE(viol->ranks.empty());
}

TEST(VerifyNegative, HintDivergenceIsCaught) {
  verify::Verifier v;
  {
    verify::Attach attach(v);
    pfs::LocalFs fs(pfs::LocalFsParams{});
    mpi::Runtime rt(rparams(2));
    rt.run([&](mpi::Comm& c) {
      mpi::io::Hints h;
      h.overlap = (c.rank() == 1);  // rank 1 opens with different hints
      mpi::io::File f(c, fs, "data", pfs::OpenMode::kCreate, h);
      f.close();
    });
  }
  EXPECT_GE(v.report().count(Rule::kHintDivergence), 1u);
  const verify::Violation* viol =
      find_violation(v.report(), Rule::kHintDivergence);
  ASSERT_NE(viol, nullptr);
  // Attributed to both the reference rank and the divergent one.
  EXPECT_EQ(viol->ranks, (std::vector<int>{0, 1}));
}

TEST(VerifyNegative, MissingWaitIsCaughtAndCounted) {
  verify::Verifier v;
  {
    verify::Attach attach(v);
    pfs::LocalFs fs(pfs::LocalFsParams{});
    mpi::Runtime rt(rparams(2));
    rt.run([&](mpi::Comm& c) {
      mpi::io::File f(c, fs, "data", pfs::OpenMode::kCreate, overlap_hints());
      mpi::Bytes payload(4096, std::byte{0x42});
      mpi::io::Request r = f.iwrite_at(
          static_cast<std::uint64_t>(c.rank()) * payload.size(), payload);
      if (c.rank() == 0) f.wait(r);  // rank 1 forgets its wait
      f.close();
    });
  }
  EXPECT_EQ(v.report().count(Rule::kMissingWait), 1u);
  const verify::Violation* viol =
      find_violation(v.report(), Rule::kMissingWait);
  ASSERT_NE(viol, nullptr);
  EXPECT_EQ(viol->ranks, std::vector<int>{1});
  EXPECT_NE(viol->message.find("never waited"), std::string::npos);
}

TEST(VerifyNegative, UnpairedSplitCollectiveIsCaught) {
  verify::Verifier v;
  {
    verify::Attach attach(v);
    pfs::LocalFs fs(pfs::LocalFsParams{});
    mpi::Runtime rt(rparams(2));
    rt.run([&](mpi::Comm& c) {
      mpi::io::File f(c, fs, "data", pfs::OpenMode::kCreate, overlap_hints());
      mpi::Bytes payload(4096, std::byte{0x5C});
      f.write_at_all_begin(
          static_cast<std::uint64_t>(c.rank()) * payload.size(), payload);
      f.close();  // write_at_all_end never called
    });
  }
  EXPECT_GE(v.report().count(Rule::kUnpairedSplit), 1u);
  const verify::Violation* viol =
      find_violation(v.report(), Rule::kUnpairedSplit);
  ASSERT_NE(viol, nullptr);
  EXPECT_FALSE(viol->ranks.empty());
}

TEST(VerifyNegative, UnsettledDeferredScopeIsCaught) {
  verify::Verifier v;
  {
    verify::Attach attach(v);
    mpi::Runtime rt(rparams(2));
    rt.run([](mpi::Comm& c) {
      if (c.rank() == 1) {
        // lint:allow(deferred-raii) — planting an unsettled deferred scope
        c.proc().begin_deferred();  // never settled; the rank just finishes
      }
    });
  }
  EXPECT_EQ(v.report().count(Rule::kUnsettledDeferred), 1u);
  const verify::Violation* viol =
      find_violation(v.report(), Rule::kUnsettledDeferred);
  ASSERT_NE(viol, nullptr);
  EXPECT_EQ(viol->ranks, std::vector<int>{1});
}

TEST(VerifyNegative, PostCloseIoIsCaught) {
  verify::Verifier v;
  {
    verify::Attach attach(v);
    pfs::LocalFs fs(pfs::LocalFsParams{});
    mpi::Runtime rt(rparams(1));
    rt.run([&](mpi::Comm& c) {
      mpi::io::File f(c, fs, "data", pfs::OpenMode::kCreate);
      mpi::Bytes payload(16, std::byte{1});
      f.write_at(0, payload);
      f.close();
      EXPECT_THROW(f.write_at(16, payload), IoError);
    });
  }
  EXPECT_EQ(v.report().count(Rule::kPostCloseIo), 1u);
  const verify::Violation* viol =
      find_violation(v.report(), Rule::kPostCloseIo);
  ASSERT_NE(viol, nullptr);
  EXPECT_EQ(viol->ranks, std::vector<int>{0});
  EXPECT_NE(viol->message.find("write_at"), std::string::npos);
}

// A prefetch left unconsumed at close is advisory — a lint, not an error:
// the report stays clean() but names the waste.
TEST(VerifyNegative, PrefetchLeakIsALint) {
  verify::Verifier v;
  {
    verify::Attach attach(v);
    pfs::LocalFs fs(pfs::LocalFsParams{});
    mpi::Runtime rt(rparams(1));
    rt.run([&](mpi::Comm& c) {
      mpi::io::File f(c, fs, "data", pfs::OpenMode::kCreate, overlap_hints());
      mpi::Bytes payload(8192, std::byte{7});
      f.write_at(0, payload);
      f.prefetch(0, payload.size());  // read-ahead nobody consumes
      f.close();
    });
  }
  EXPECT_TRUE(v.report().clean());
  EXPECT_GE(v.report().lints(), 1u);
  EXPECT_GE(v.report().count(Rule::kPrefetchLeak), 1u);
}

// A stuck collective pattern becomes a *diagnosed* deadlock: the error names
// each blocked rank and its blocking operation, and the report records it.
TEST(VerifyNegative, DeadlockIsDiagnosedWithBlockedRanks) {
  verify::Verifier v;
  std::string diagnosis;
  {
    verify::Attach attach(v);
    mpi::Runtime rt(rparams(2));
    try {
      rt.run([](mpi::Comm& c) {
        // Classic cycle: each rank receives from the other before sending.
        c.recv(1 - c.rank(), /*tag=*/5);
      });
      FAIL() << "expected DeadlockError";
    } catch (const DeadlockError& e) {
      diagnosis = e.what();
    }
  }
  EXPECT_GE(v.report().count(Rule::kDeadlock), 1u);
  EXPECT_NE(diagnosis.find("rank 0"), std::string::npos) << diagnosis;
  EXPECT_NE(diagnosis.find("rank 1"), std::string::npos) << diagnosis;
  EXPECT_NE(diagnosis.find("recv"), std::string::npos) << diagnosis;
}

// ---------------------------------------------------------------------------
// Positive path: clean programs verify clean.
// ---------------------------------------------------------------------------

enzo::SimulationConfig small_config() {
  enzo::SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;
  c.n_clumps = 3;
  c.refine.threshold = 3.0;
  c.refine.min_box = 2;
  c.compute_per_cell = 0.0;
  return c;
}

constexpr bench::Backend kAllBackends[] = {
    bench::Backend::kHdf4, bench::Backend::kMpiIo, bench::Backend::kHdf5,
    bench::Backend::kPnetcdf};

TEST(VerifyClean, EnzoDumpRestartVerifiesCleanOnAllBackends) {
  for (bench::Backend b : kAllBackends) {
    verify::Verifier v;
    bench::RunSpec spec;
    spec.machine = platform::origin2000_xfs();
    spec.config = small_config();
    spec.nprocs = 4;
    spec.backend = b;
    spec.verifier = &v;
    bench::run_enzo_io(spec);
    EXPECT_TRUE(v.report().violations.empty())
        << bench::to_string(b) << ":\n" << v.report().format();
  }
}

// The registry a clean run exports is byte-identical with and without the
// verifier attached: observation must not perturb the measurement.
TEST(VerifyClean, VerifierDoesNotPerturbCleanRunMetrics) {
  std::string with, without;
  for (int pass = 0; pass < 2; ++pass) {
    obs::Collector collector;
    verify::Verifier v;
    bench::RunSpec spec;
    spec.machine = platform::origin2000_xfs();
    spec.config = small_config();
    spec.nprocs = 4;
    spec.backend = bench::Backend::kMpiIo;
    spec.collector = &collector;
    if (pass == 0) spec.verifier = &v;
    bench::run_enzo_io(spec);
    (pass == 0 ? with : without) = collector.registry().to_json();
  }
  EXPECT_EQ(with, without);
}

// ---------------------------------------------------------------------------
// Schedule-perturbation differential: the engine's only legal freedom is the
// order of exact virtual-clock ties, so any seed must reproduce the baseline
// run bit-for-bit — dumps, metric exports, check:: audit, verify:: report.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSeeds[] = {0, 1, 2};

/// FNV-1a per stored file — the cross-seed comparison unit.
std::map<std::string, std::uint64_t> store_checksums(
    const stor::ObjectStore& store) {
  std::map<std::string, std::uint64_t> sums;
  for (const auto& name : store.list()) {
    std::vector<std::byte> bytes(store.size(name));
    if (!bytes.empty()) store.read_at(name, 0, bytes);
    std::uint64_t h = 1469598103934665603ULL;
    for (std::byte b : bytes) {
      h ^= static_cast<std::uint64_t>(b);
      h *= 1099511628211ULL;
    }
    sums.emplace(name, h);
  }
  return sums;
}

std::unique_ptr<enzo::IoBackend> make_backend(bench::Backend k,
                                              pfs::FileSystem& fs) {
  switch (k) {
    case bench::Backend::kHdf4:
      return std::make_unique<enzo::Hdf4SerialBackend>(fs);
    case bench::Backend::kMpiIo:
      return std::make_unique<enzo::MpiIoBackend>(fs, mpi::io::Hints{});
    case bench::Backend::kHdf5:
      return std::make_unique<enzo::Hdf5ParallelBackend>(fs,
                                                         hdf5::FileConfig{});
    case bench::Backend::kPnetcdf:
      return std::make_unique<enzo::PnetcdfBackend>(fs, mpi::io::Hints{});
  }
  throw LogicError("bad backend");
}

/// One audited, verified dump+restart under `seed`; returns the store
/// checksums.  The check:: audit and the verify:: report must both be clean
/// under *every* interleaving.
std::map<std::string, std::uint64_t> run_perturbed(bench::Backend kind,
                                                   std::uint64_t seed) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  check::CheckOptions copts;
  copts.padding_alignment = 4096;  // pnetcdf aligns its data region
  check::IoChecker checker(copts);
  fs.attach_observer(&checker);

  verify::Verifier v;
  {
    verify::Attach attach(v);
    mpi::Runtime rt(rparams(4, seed));
    rt.run([&](mpi::Comm& c) {
      auto backend = make_backend(kind, fs);
      enzo::EnzoSimulation sim(c, small_config());
      sim.initialize_from_universe();
      sim.evolve_cycle();
      backend->write_dump(c, sim.state(), "dump");
      enzo::EnzoSimulation fresh(c, small_config());
      backend->read_restart(c, fresh.state(), "dump");
    });
  }
  EXPECT_TRUE(v.report().violations.empty())
      << bench::to_string(kind) << " seed " << seed << ":\n"
      << v.report().format();
  check::CheckReport audit = checker.analyze(&fs.store());
  EXPECT_TRUE(audit.clean()) << bench::to_string(kind) << " seed " << seed
                             << ":\n" << audit.format();
  return store_checksums(fs.store());
}

class PerturbDifferential
    : public ::testing::TestWithParam<bench::Backend> {};

TEST_P(PerturbDifferential, DumpsAreByteIdenticalAcrossSeeds) {
  const bench::Backend kind = GetParam();
  auto baseline = run_perturbed(kind, kSeeds[0]);
  EXPECT_FALSE(baseline.empty());
  for (std::size_t i = 1; i < std::size(kSeeds); ++i) {
    EXPECT_EQ(run_perturbed(kind, kSeeds[i]), baseline)
        << bench::to_string(kind) << ": seed " << kSeeds[i]
        << " dump diverged from the seed-" << kSeeds[0] << " baseline";
  }
}

/// The schedule-invariant metric export: every integer counter (bytes, ops,
/// messages, windows, cache hits) in deterministic order.  Time-valued
/// gauges are excluded on purpose: at an exact virtual-clock tie the
/// perturbed schedule legitimately reorders shared-resource (disk, NIC)
/// arbitration, so per-rank *times* may shift a little between seeds even
/// though every byte moved, every message sent and every file written is
/// identical (see docs/VERIFY.md).
std::string counters_export(const obs::MetricsRegistry& reg) {
  std::string out;
  for (const auto& [scope, s] : reg.scopes()) {
    for (const auto& [name, value] : s.counters) {
      out += scope + "." + name + "=" + std::to_string(value) + "\n";
    }
  }
  return out;
}

TEST_P(PerturbDifferential, MetricExportsAreByteIdenticalAcrossSeeds) {
  const bench::Backend kind = GetParam();
  std::string baseline;
  for (std::uint64_t seed : kSeeds) {
    obs::Collector collector;
    verify::Verifier v;
    bench::RunSpec spec;
    spec.machine = platform::origin2000_xfs();
    spec.config = small_config();
    spec.nprocs = 4;
    spec.backend = kind;
    spec.collector = &collector;
    spec.verifier = &v;
    spec.sched_seed = seed;
    bench::run_enzo_io(spec);
    EXPECT_TRUE(v.report().violations.empty())
        << bench::to_string(kind) << " seed " << seed << ":\n"
        << v.report().format();
    const std::string counters = counters_export(collector.registry());
    EXPECT_FALSE(counters.empty());
    if (seed == kSeeds[0]) {
      baseline = counters;
    } else {
      EXPECT_EQ(counters, baseline)
          << bench::to_string(kind) << ": seed " << seed
          << " metrics diverged from the seed-" << kSeeds[0] << " baseline";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PerturbDifferential,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           std::string name = bench::to_string(info.param);
                           name.erase(std::remove(name.begin(), name.end(),
                                                  '-'),
                                      name.end());
                           return name;
                         });

// The PARAMRIO_SCHED_SEED environment fallback reaches the engine when the
// programmatic seed is unset — the CI matrix leg depends on it.
TEST(PerturbDifferential, EnvSeedFallbackPerturbsTheSchedule) {
  // The suite itself may run under PARAMRIO_SCHED_SEED (the CI matrix leg
  // does exactly that) — park any outer value for the duration.
  const char* outer = ::getenv("PARAMRIO_SCHED_SEED");
  const std::string saved = outer ? outer : "";
  ::unsetenv("PARAMRIO_SCHED_SEED");

  sim::Engine::Options o;
  o.nprocs = 2;
  EXPECT_EQ(o.effective_perturb_seed(), 0u);
  ::setenv("PARAMRIO_SCHED_SEED", "7", 1);
  EXPECT_EQ(o.effective_perturb_seed(), 7u);
  o.env_perturb = false;  // the classic-order pin ignores the environment
  EXPECT_EQ(o.effective_perturb_seed(), 0u);
  o.env_perturb = true;
  o.perturb_seed = 3;  // the programmatic seed wins over the environment
  EXPECT_EQ(o.effective_perturb_seed(), 3u);
  ::unsetenv("PARAMRIO_SCHED_SEED");
  EXPECT_EQ(o.effective_perturb_seed(), 3u);

  if (outer) ::setenv("PARAMRIO_SCHED_SEED", saved.c_str(), 1);
}

}  // namespace
}  // namespace paramrio
