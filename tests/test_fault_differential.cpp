// Backend-differential fault fuzzing: for several fixed seeds, run the same
// randomized dump/restart workload through all four I/O backends under the
// same seeded fault plan (transient EIO, short transfers, stalls) with retry
// enabled, and require that every backend (a) restarts byte-identically to
// what it dumped, (b) produces byte-for-byte the same files a fault-free run
// produces, and (c) passes the I/O-correctness audit.
//
// Plus the crash-consistency contract: a dump interrupted by an injected
// mid-write crash must leave the previous generation restorable and be
// detected as torn — never silently pass as a valid checkpoint.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "amr/particles_par.hpp"
#include "check/io_checker.hpp"
#include "enzo/backends.hpp"
#include "enzo/checkpoint.hpp"
#include "enzo/simulation.hpp"
#include "fault/fault.hpp"
#include "pfs/local_fs.hpp"

namespace paramrio::enzo {
namespace {

mpi::RuntimeParams rparams(int n) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  return p;
}

/// Seed-randomized workload: the hierarchy (clump count, refinement
/// threshold) and particle load vary per seed, so each seed exercises a
/// different dump geometry.
SimulationConfig config_for_seed(std::uint64_t seed) {
  SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = (seed % 2 == 0) ? 0.25 : 0.125;
  c.n_clumps = 3 + static_cast<int>(seed % 3);
  c.refine.threshold = 3.0 - 0.2 * static_cast<double>(seed % 2);
  c.refine.min_box = 2;
  c.compute_per_cell = 0.0;
  return c;
}

enum class Kind { kHdf4, kMpiIo, kHdf5, kPnetcdf };

constexpr Kind kAllKinds[] = {Kind::kHdf4, Kind::kMpiIo, Kind::kHdf5,
                              Kind::kPnetcdf};

const char* to_cstr(Kind k) {
  switch (k) {
    case Kind::kHdf4:
      return "hdf4";
    case Kind::kMpiIo:
      return "mpiio";
    case Kind::kHdf5:
      return "hdf5";
    case Kind::kPnetcdf:
      return "pnetcdf";
  }
  return "?";
}

std::unique_ptr<IoBackend> make_backend(Kind k, pfs::FileSystem& fs,
                                        const mpi::io::Hints& hints) {
  switch (k) {
    case Kind::kHdf4:
      return std::make_unique<Hdf4SerialBackend>(fs);
    case Kind::kMpiIo:
      return std::make_unique<MpiIoBackend>(fs, hints);
    case Kind::kHdf5: {
      hdf5::FileConfig cfg;
      cfg.io_hints = hints;
      return std::make_unique<Hdf5ParallelBackend>(fs, cfg);
    }
    case Kind::kPnetcdf:
      return std::make_unique<PnetcdfBackend>(fs, hints);
  }
  throw LogicError("bad backend kind");
}

/// The shared transient-fault plan: every class of survivable fault, low
/// probability, consecutive hits bounded below the retry budget so every run
/// converges.
fault::FaultPlan transient_plan(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  fault::FaultSpec eio;
  eio.kind = fault::FaultKind::kTransientError;
  eio.probability = 0.03;
  eio.max_consecutive = 2;
  fault::FaultSpec shortw;
  shortw.kind = fault::FaultKind::kShortWrite;
  shortw.probability = 0.03;
  shortw.max_consecutive = 2;
  fault::FaultSpec shortr;
  shortr.kind = fault::FaultKind::kShortRead;
  shortr.probability = 0.02;
  shortr.max_consecutive = 2;
  fault::FaultSpec stall;
  stall.kind = fault::FaultKind::kStall;
  stall.probability = 0.01;
  stall.stall_seconds = 1e-4;
  plan.specs.push_back(eio);
  plan.specs.push_back(shortw);
  plan.specs.push_back(shortr);
  plan.specs.push_back(stall);
  return plan;
}

fault::RetryPolicy retry_policy() {
  fault::RetryPolicy rp;
  rp.max_retries = 10;
  return rp;
}

void sort_particles(amr::ParticleSet& p) { amr::local_sort_by_id(p); }

void expect_states_equal(const SimulationState& a, const SimulationState& b) {
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.cycle, b.cycle);
  ASSERT_EQ(a.my_fields.size(), b.my_fields.size());
  for (std::size_t f = 0; f < a.my_fields.size(); ++f) {
    EXPECT_EQ(a.my_fields[f], b.my_fields[f]) << "field " << f;
  }
  amr::ParticleSet pa = a.my_particles, pb = b.my_particles;
  sort_particles(pa);
  sort_particles(pb);
  EXPECT_EQ(pa, pb);
}

/// FNV-1a per stored file — the cross-run comparison unit.
std::map<std::string, std::uint64_t> store_checksums(
    const stor::ObjectStore& store) {
  std::map<std::string, std::uint64_t> sums;
  for (const auto& name : store.list()) {
    std::vector<std::byte> bytes(store.size(name));
    if (!bytes.empty()) store.read_at(name, 0, bytes);
    std::uint64_t h = 1469598103934665603ULL;
    for (std::byte b : bytes) {
      h ^= static_cast<std::uint64_t>(b);
      h *= 1099511628211ULL;
    }
    sums.emplace(name, h);
  }
  return sums;
}

/// One dump+restart through `kind`, optionally under the seeded fault plan.
/// The HDF4 backend talks to the fs directly and is covered by fs-level
/// retry; the MPI-IO-based backends carry the policy in their hints.
/// Returns the per-file checksums; restart fidelity and the correctness
/// audit are asserted inside.
std::map<std::string, std::uint64_t> run_backend(Kind kind,
                                                 std::uint64_t seed,
                                                 bool inject) {
  const int p = 4;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  check::CheckOptions copts;
  copts.padding_alignment = 4096;  // pnetcdf aligns its data region
  check::IoChecker checker(copts);
  fs.attach_observer(&checker);

  fault::Injector injector(transient_plan(seed));
  mpi::io::Hints hints;
  if (inject) {
    fs.attach_fault_hook(&injector);
    if (kind == Kind::kHdf4) {
      fs.set_retry(retry_policy());
    } else {
      hints.retry = retry_policy();
    }
  }

  const SimulationConfig cfg = config_for_seed(seed);
  mpi::Runtime rt(rparams(p));
  std::vector<SimulationState> originals(static_cast<std::size_t>(p));
  rt.run([&](mpi::Comm& c) {
    auto backend = make_backend(kind, fs, hints);
    EnzoSimulation sim(c, cfg);
    sim.initialize_from_universe();
    sim.evolve_cycle();
    if (c.rank() == 0) checker.begin_phase("dump");
    c.barrier();
    backend->write_dump(c, sim.state(), "dump");
    originals[static_cast<std::size_t>(c.rank())] = sim.state();

    if (c.rank() == 0) checker.begin_phase("restart");
    c.barrier();
    EnzoSimulation sim2(c, cfg);
    backend->read_restart(c, sim2.state(), "dump");
    // Faults or not, the restart must reproduce the dumped state exactly.
    expect_states_equal(originals[static_cast<std::size_t>(c.rank())],
                        sim2.state());
  });

  // The faulted run must still audit clean: retries may rewrite a region,
  // but only ever the same rank rewriting its own bytes — no cross-rank
  // conflicts, holes, reads of never-written data, or leaked descriptors.
  check::CheckReport audit = checker.analyze(&fs.store());
  EXPECT_TRUE(audit.clean())
      << to_cstr(kind) << " seed " << seed << (inject ? " faulted" : " clean")
      << ":\n"
      << audit.format();

  if (inject) {
    EXPECT_GT(injector.counters().injected_total(), 0u)
        << to_cstr(kind) << " seed " << seed
        << ": plan injected nothing; the run proves nothing";
  }
  return store_checksums(fs.store());
}

class FaultDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

// The headline acceptance property: for each seed, every backend's faulted
// dump converges to byte-for-byte the files of its fault-free run.
TEST_P(FaultDifferential, AllBackendsConvergeToNoFaultBytes) {
  const std::uint64_t seed = GetParam();
  for (Kind kind : kAllKinds) {
    auto clean = run_backend(kind, seed, /*inject=*/false);
    auto faulted = run_backend(kind, seed, /*inject=*/true);
    EXPECT_EQ(faulted, clean)
        << to_cstr(kind) << " seed " << seed
        << ": retried dump diverged from the fault-free dump";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultDifferential,
                         ::testing::Values(101ull, 202ull, 303ull),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Determinism of the whole harness: the same seeded faulted run twice gives
// identical files (the injector is the only randomness, and it is seeded).
TEST(FaultDifferential, FaultedRunsAreReplayable) {
  auto a = run_backend(Kind::kMpiIo, 101, /*inject=*/true);
  auto b = run_backend(Kind::kMpiIo, 101, /*inject=*/true);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Crash consistency: an injected crash in the middle of a generation-1 dump
// must leave generation 0 restorable and generation 1 detected as torn.
// ---------------------------------------------------------------------------

class CrashMatrix : public ::testing::TestWithParam<Kind> {};

TEST_P(CrashMatrix, MidDumpCrashRecoversPreviousGeneration) {
  const Kind kind = GetParam();
  const int p = 4;
  const SimulationConfig cfg = config_for_seed(1);

  // Probe run: count the I/O ops of a clean two-generation checkpoint
  // sequence so the crash can be planted mid-way through generation 1.
  std::uint64_t ops_before_gen1 = 0;
  std::uint64_t ops_after_gen1 = 0;
  {
    pfs::LocalFs fs(pfs::LocalFsParams{});
    fault::Injector probe(fault::FaultPlan{});  // counts, injects nothing
    fs.attach_fault_hook(&probe);
    mpi::Runtime rt(rparams(p));
    rt.run([&](mpi::Comm& c) {
      auto backend = make_backend(kind, fs, {});
      CheckpointSeries series(*backend, fs, "ck");
      EnzoSimulation sim(c, cfg);
      sim.initialize_from_universe();
      sim.evolve_cycle();
      series.dump(c, sim.state(), 0);
      if (c.rank() == 0) ops_before_gen1 = probe.counters().io_ops;
      c.barrier();
      sim.evolve_cycle();
      series.dump(c, sim.state(), 1);
      if (c.rank() == 0) ops_after_gen1 = probe.counters().io_ops;
      c.barrier();
    });
    auto backend = make_backend(kind, fs, {});
    CheckpointSeries series(*backend, fs, "ck");
    ASSERT_TRUE(series.committed(0));
    ASSERT_TRUE(series.committed(1));
    EXPECT_FALSE(series.torn(0));
    EXPECT_FALSE(series.torn(1));
  }
  ASSERT_GT(ops_after_gen1, ops_before_gen1 + 4)
      << to_cstr(kind) << ": generation-1 dump too small to crash mid-way";

  // Crash run: same deterministic op stream, crash planted half-way into
  // the generation-1 dump.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  fault::FaultPlan plan;
  fault::FaultSpec crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.first_op =
      ops_before_gen1 + (ops_after_gen1 - ops_before_gen1) / 2;
  crash.max_faults = 1;
  plan.specs.push_back(crash);
  fault::Injector injector(plan);
  fs.attach_fault_hook(&injector);

  std::vector<SimulationState> gen0_states(static_cast<std::size_t>(p));
  bool crashed = false;
  {
    mpi::Runtime rt(rparams(p));
    try {
      rt.run([&](mpi::Comm& c) {
        auto backend = make_backend(kind, fs, {});
        CheckpointSeries series(*backend, fs, "ck");
        EnzoSimulation sim(c, cfg);
        sim.initialize_from_universe();
        sim.evolve_cycle();
        series.dump(c, sim.state(), 0);
        gen0_states[static_cast<std::size_t>(c.rank())] = sim.state();
        c.barrier();
        sim.evolve_cycle();
        series.dump(c, sim.state(), 1);  // never completes
      });
    } catch (const CrashError&) {
      crashed = true;
    }
  }
  ASSERT_TRUE(crashed) << to_cstr(kind);
  EXPECT_EQ(injector.counters().count(fault::FaultKind::kCrash), 1u);
  injector.set_enabled(false);

  // The torn dump is detected; the previous generation survived intact.
  {
    auto backend = make_backend(kind, fs, {});
    CheckpointSeries series(*backend, fs, "ck");
    EXPECT_TRUE(series.committed(0)) << to_cstr(kind);
    EXPECT_FALSE(series.committed(1)) << to_cstr(kind);
    EXPECT_TRUE(series.torn(1)) << to_cstr(kind);
    ASSERT_TRUE(series.latest_committed(5).has_value());
    EXPECT_EQ(*series.latest_committed(5), 0u);
  }

  // Recovery: a fresh job restores generation 0 byte-identically and may
  // resume from there — an interrupted dump costs progress, not data.
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    auto backend = make_backend(kind, fs, {});
    CheckpointSeries series(*backend, fs, "ck");
    EnzoSimulation sim(c, cfg);
    std::uint64_t gen = series.restore_latest(c, sim.state(), 5);
    EXPECT_EQ(gen, 0u);
    expect_states_equal(gen0_states[static_cast<std::size_t>(c.rank())],
                        sim.state());
    sim.evolve_cycle();  // life goes on
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CrashMatrix,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto& info) {
                           return std::string(to_cstr(info.param));
                         });

// With no committed generation at all, restore fails loudly — a torn-only
// series can never silently restart from garbage.
TEST(CrashConsistency, NoCommittedGenerationThrows) {
  const int p = 2;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  const SimulationConfig cfg = config_for_seed(1);
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    auto backend = make_backend(Kind::kMpiIo, fs, {});
    CheckpointSeries series(*backend, fs, "ck");
    EnzoSimulation sim(c, cfg);
    EXPECT_THROW(series.restore_latest(c, sim.state(), 3), IoError);
  });
}

// A stray marker with the wrong generation id (e.g. a renamed file) does not
// validate the dump.
TEST(CrashConsistency, MarkerMustNameItsGeneration) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(1));
  const SimulationConfig cfg = config_for_seed(1);
  rt.run([&](mpi::Comm& c) {
    auto backend = make_backend(Kind::kMpiIo, fs, {});
    CheckpointSeries series(*backend, fs, "ck");
    EnzoSimulation sim(c, cfg);
    sim.initialize_from_universe();
    series.dump(c, sim.state(), 0);
  });
  auto backend = make_backend(Kind::kMpiIo, fs, {});
  CheckpointSeries series(*backend, fs, "ck");
  ASSERT_TRUE(series.committed(0));
  // Copy gen-0's marker over gen-1's name: same bytes, wrong generation.
  std::vector<std::byte> marker(fs.store().size(series.marker_path(0)));
  fs.store().read_at(series.marker_path(0), 0, marker);
  fs.store().create(series.marker_path(1));
  fs.store().write_at(series.marker_path(1), 0, marker);
  EXPECT_FALSE(series.committed(1));
  EXPECT_FALSE(series.torn(1));  // a lone bad marker is not a torn dump
}

}  // namespace
}  // namespace paramrio::enzo
