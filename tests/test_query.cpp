// The query/extract service: oracle-checked reads at scale.
//
//   * Oracle matrix: every extract, particle range query and metadata
//     lookup is byte-compared against an untimed re-read of the stored dump
//     bytes, for all four backends, schedule seeds {0,1,2} and both engine
//     backends; results and physical-read counters are schedule-invariant.
//   * Shared cache: N readers of the same hot region cost one physical
//     fetch per distinct sieve block; cache on/off, cold/warm, tiny
//     capacities and prefetch overlap all return identical bytes.
//   * Faults: transient errors and short reads during the read phase are
//     absorbed by the service's retry budget (direct and through a staged
//     facade) and converge to the no-fault bytes.
//   * Catalog: generation indexes persist through mdms::Catalog (load path
//     serves a fresh service without re-inspecting the dump), survive
//     save/load, honour tombstones, and v1 catalog files still load.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "base/byte_io.hpp"
#include "enzo/backends.hpp"
#include "enzo/checkpoint.hpp"
#include "enzo/dump_inspect.hpp"
#include "enzo/simulation.hpp"
#include "fault/fault.hpp"
#include "mdms/catalog.hpp"
#include "pfs/local_disk_fs.hpp"
#include "pfs/local_fs.hpp"
#include "platform/machine.hpp"
#include "query/service.hpp"
#include "stage/staged_fs.hpp"

namespace paramrio {
namespace {

constexpr int kProcs = 4;
constexpr const char* kSeries = "qseries";

enzo::SimulationConfig workload() {
  enzo::SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;
  c.n_clumps = 4;
  c.refine.threshold = 3.0;
  c.refine.min_box = 2;
  c.compute_per_cell = 0.0;
  return c;
}

enum class Kind { kHdf4, kMpiIo, kHdf5, kPnetcdf };

constexpr Kind kAllKinds[] = {Kind::kHdf4, Kind::kMpiIo, Kind::kHdf5,
                              Kind::kPnetcdf};

const char* to_cstr(Kind k) {
  switch (k) {
    case Kind::kHdf4:
      return "hdf4";
    case Kind::kMpiIo:
      return "mpiio";
    case Kind::kHdf5:
      return "hdf5";
    case Kind::kPnetcdf:
      return "pnetcdf";
  }
  return "?";
}

enzo::DumpFormat format_of(Kind k) {
  switch (k) {
    case Kind::kHdf4:
      return enzo::DumpFormat::kHdf4;
    case Kind::kMpiIo:
      return enzo::DumpFormat::kMpiIo;
    case Kind::kHdf5:
      return enzo::DumpFormat::kHdf5;
    case Kind::kPnetcdf:
      return enzo::DumpFormat::kPnetcdf;
  }
  return enzo::DumpFormat::kUnknown;
}

std::unique_ptr<enzo::IoBackend> make_backend(Kind k, pfs::FileSystem& fs) {
  switch (k) {
    case Kind::kHdf4:
      return std::make_unique<enzo::Hdf4SerialBackend>(fs);
    case Kind::kMpiIo:
      return std::make_unique<enzo::MpiIoBackend>(fs, mpi::io::Hints{});
    case Kind::kHdf5:
      return std::make_unique<enzo::Hdf5ParallelBackend>(fs,
                                                         hdf5::FileConfig{});
    case Kind::kPnetcdf:
      return std::make_unique<enzo::PnetcdfBackend>(fs, mpi::io::Hints{});
  }
  throw LogicError("bad backend kind");
}

/// The shared request set every reader issues: the full root field, a
/// z-slice, an interior octant, a strided column of another field, and (when
/// the hierarchy refined) the first subgrid in full.
std::vector<query::SubVolumeRequest> request_list(
    const query::GenerationIndex& ix) {
  const auto& names = amr::baryon_field_names();
  std::vector<query::SubVolumeRequest> reqs;
  reqs.push_back({0, names[0], {0, 0, 0}, {16, 16, 16}});
  reqs.push_back({0, names[0], {8, 0, 0}, {1, 16, 16}});
  reqs.push_back({0, names[0], {4, 4, 4}, {6, 6, 6}});
  reqs.push_back({0, names[3], {0, 5, 7}, {16, 1, 1}});
  for (const auto& [gid, fields] : ix.fields) {
    if (gid == 0) continue;
    const query::FieldExtent& e = fields.at(names[0]);
    reqs.push_back({gid, names[0], {0, 0, 0}, e.dims});
    break;
  }
  return reqs;
}

/// Untimed oracle: slice the sub-volume straight out of the stored bytes.
std::vector<float> oracle_extract(const stor::ObjectStore& store,
                                  const query::FieldExtent& e,
                                  const query::SubVolumeRequest& q) {
  std::vector<std::byte> raw(e.bytes);
  store.read_at(e.path, e.offset, raw);
  std::vector<float> cells(e.bytes / sizeof(float));
  std::memcpy(cells.data(), raw.data(), raw.size());
  std::vector<float> out;
  out.reserve(q.count[0] * q.count[1] * q.count[2]);
  for (std::uint64_t z = 0; z < q.count[0]; ++z) {
    for (std::uint64_t y = 0; y < q.count[1]; ++y) {
      for (std::uint64_t x = 0; x < q.count[2]; ++x) {
        out.push_back(cells[((q.start[0] + z) * e.dims[1] + q.start[1] + y) *
                                e.dims[2] +
                            q.start[2] + x]);
      }
    }
  }
  return out;
}

/// Untimed oracle: binary-search the stored (sorted) ID array and slice
/// every particle array for IDs in [lo, hi].
amr::ParticleSet oracle_particles(const stor::ObjectStore& store,
                                  const query::GenerationIndex& ix,
                                  std::uint64_t lo, std::uint64_t hi) {
  amr::ParticleSet set;
  const std::uint64_t n = ix.meta.n_particles;
  if (n == 0) return set;
  std::vector<std::byte> raw(n * sizeof(std::int64_t));
  store.read_at(ix.particles[0].path, ix.particles[0].offset, raw);
  std::vector<std::int64_t> ids(n);
  std::memcpy(ids.data(), raw.data(), raw.size());
  const auto first =
      std::lower_bound(ids.begin(), ids.end(),
                       static_cast<std::int64_t>(lo)) -
      ids.begin();
  const auto last = std::upper_bound(ids.begin(), ids.end(),
                                     static_cast<std::int64_t>(hi)) -
                    ids.begin();
  const std::size_t count = static_cast<std::size_t>(last - first);
  set.resize(count);
  if (count == 0) return set;
  for (std::size_t a = 0; a < ix.particles.size(); ++a) {
    const query::ParticleExtent& pe = ix.particles[a];
    std::vector<std::byte> buf(count * pe.elem_size);
    store.read_at(pe.path,
                  pe.offset + static_cast<std::uint64_t>(first) * pe.elem_size,
                  buf);
    enzo::particle_array_from_bytes(set, a, count, buf.data());
  }
  return set;
}

struct RunConfig {
  Kind kind = Kind::kMpiIo;
  std::uint64_t seed = 0;
  sim::SchedBackend engine = sim::SchedBackend::kFibers;
  bool cache_enabled = true;
  bool sieving = true;
  bool overlap = false;
  std::uint64_t ds_block = 4 * KiB;
  std::uint64_t cache_capacity = 256 * MiB;
  int retries = 0;  ///< Hints::retry.max_retries for the service
  /// Armed between open_generation and the extracts (the marker probe and
  /// the index build run clean; the data path takes the faults).
  fault::Injector* faults = nullptr;
  bool staged = false;  ///< read through a LocalDiskFs-staged facade (kLazy)
  bool warm_pass = false;  ///< rank 0 replays the slice request when done
  mdms::Catalog* catalog = nullptr;
};

struct RunOutcome {
  std::vector<std::vector<float>> extracts;  ///< rank 0, all requests
  amr::ParticleSet prange;
  query::GenerationIndex index;
  query::ExtractPlan slice_plan;  ///< rank 0's cold z-slice plan
  query::ExtractPlan warm_plan;   ///< rank 0's warm replay plan
  std::uint64_t rank0_blocks = 0;  ///< sieve blocks across rank 0's requests
  double meta_time = 0.0;
  std::uint64_t meta_cycle = 0;
  std::uint64_t n_particles = 0;
  std::uint64_t demand_fetches = 0;
  std::uint64_t fetched_bytes = 0;
  std::uint64_t planned_runs = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t fs_retries = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t shared_waits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t index_builds = 0;
  std::uint64_t index_loads = 0;
};

/// One full session: dump generation 0 collectively, drop caches, then have
/// every rank issue the shared request set concurrently.  Results are
/// oracle-checked against the stored bytes and across ranks before return.
RunOutcome run_query(const RunConfig& cfg) {
  const std::string label = std::string(to_cstr(cfg.kind)) + "/seed" +
                            std::to_string(cfg.seed) + "/" +
                            (cfg.engine == sim::SchedBackend::kThreads
                                 ? "threads"
                                 : "fibers");
  platform::Testbed tb(platform::chiba_pvfs_ethernet(), kProcs, cfg.seed,
                       cfg.engine);
  std::unique_ptr<pfs::LocalDiskFs> staging;
  std::unique_ptr<stage::StagedFs> staged;
  pfs::FileSystem* fs = &tb.fs();
  if (cfg.staged) {
    staging =
        std::make_unique<pfs::LocalDiskFs>(pfs::LocalDiskFsParams{}, kProcs);
    stage::StagedFsParams sp;
    sp.stage_retry.max_retries = 6;
    staged = std::make_unique<stage::StagedFs>(sp, *staging, tb.fs());
    fs = staged.get();
  }
  if (cfg.faults != nullptr) {
    // Attached to the facade (the logical namespace the specs match on);
    // in the staged case the staging tier beneath is reached through it.
    cfg.faults->set_enabled(false);
    fs->attach_fault_hook(cfg.faults);
  }

  query::Service::Params qp;
  qp.hints.ds_buffer_size = cfg.ds_block;
  qp.hints.data_sieving_reads = cfg.sieving;
  qp.hints.overlap = cfg.overlap;
  qp.hints.retry.max_retries = cfg.retries;
  qp.cache_enabled = cfg.cache_enabled;
  qp.cache_capacity = cfg.cache_capacity;
  query::Service svc(*fs, kSeries, qp);
  if (cfg.catalog != nullptr) svc.attach_catalog(cfg.catalog);

  RunOutcome out;
  std::vector<std::vector<std::vector<float>>> per_rank(kProcs);
  std::vector<amr::ParticleSet> per_rank_particles(kProcs);

  tb.runtime().run([&](mpi::Comm& c) {
    auto backend = make_backend(cfg.kind, *fs);
    enzo::EnzoSimulation sim(c, workload());
    sim.initialize_from_universe();
    sim.evolve_cycle();
    enzo::CheckpointSeries series(*backend, *fs, kSeries);
    if (cfg.staged) series.set_staging(*staged, stage::DrainPolicy::kLazy);
    series.dump(c, sim.state(), 0);
    c.barrier();
    if (c.rank() == 0) {
      fs->drop_caches();
      EXPECT_EQ(enzo::detect_dump_format(*fs, series.gen_base(0)),
                format_of(cfg.kind))
          << label;
    }
    c.barrier();

    const query::GenerationIndex& ix = svc.open_generation(0);
    c.barrier();
    if (c.rank() == 0 && cfg.faults != nullptr) {
      cfg.faults->set_enabled(true);
    }
    c.barrier();

    const auto reqs = request_list(ix);
    auto& mine = per_rank[static_cast<std::size_t>(c.rank())];
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      query::ExtractPlan plan;
      mine.push_back(svc.extract(0, reqs[i], &plan));
      if (c.rank() == 0) {
        out.rank0_blocks += plan.blocks;
        if (i == 1) out.slice_plan = plan;
      }
    }
    const std::uint64_t span = ix.id_max - ix.id_min;
    query::ExtractPlan pplan;
    per_rank_particles[static_cast<std::size_t>(c.rank())] =
        svc.particles(0, ix.id_min + span / 4, ix.id_min + span / 2, &pplan);
    if (c.rank() == 0) out.rank0_blocks += pplan.blocks;

    const enzo::DumpMeta& m = svc.metadata(0);
    if (c.rank() == 0) {
      out.index = ix;
      out.meta_time = m.time;
      out.meta_cycle = m.cycle;
      out.n_particles = m.n_particles;
      EXPECT_FALSE(svc.attribute(0, "metadata").empty()) << label;
    }
    c.barrier();
    if (cfg.warm_pass && c.rank() == 0) {
      query::ExtractPlan plan;
      EXPECT_EQ(svc.extract(0, reqs[1], &plan), mine[1]) << label;
      out.warm_plan = plan;
    }
    c.barrier();
  });

  for (int r = 1; r < kProcs; ++r) {
    EXPECT_EQ(per_rank[static_cast<std::size_t>(r)], per_rank[0])
        << label << ": rank " << r << " extracts diverged";
    EXPECT_EQ(per_rank_particles[static_cast<std::size_t>(r)],
              per_rank_particles[0])
        << label << ": rank " << r << " particles diverged";
  }
  out.extracts = per_rank[0];
  out.prange = per_rank_particles[0];
  out.demand_fetches = svc.demand_fetches();
  out.fetched_bytes = svc.fetched_bytes();
  out.planned_runs = svc.planned_runs();
  out.io_retries = svc.io_retries();
  out.fs_retries = fs->fs_retries();
  out.prefetches = svc.prefetches();
  out.shared_waits = svc.shared_fetch_waits();
  out.cache_hits = svc.cache().hits();
  out.cache_evictions = svc.cache().evictions();
  out.index_builds = svc.index_builds();
  out.index_loads = svc.index_loads();

  // The oracle: every returned byte must equal an untimed re-read of the
  // stored dump, sliced by plain loops.
  const stor::ObjectStore& store = fs->store();
  const auto reqs = request_list(out.index);
  EXPECT_EQ(out.extracts.size(), reqs.size()) << label;
  if (out.extracts.size() != reqs.size()) return out;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(out.extracts[i],
              oracle_extract(
                  store, out.index.field(reqs[i].grid_id, reqs[i].field),
                  reqs[i]))
        << label << ": request " << i << " diverged from the stored bytes";
  }
  const std::uint64_t span = out.index.id_max - out.index.id_min;
  EXPECT_EQ(out.prange,
            oracle_particles(store, out.index, out.index.id_min + span / 4,
                             out.index.id_min + span / 2))
      << label << ": particle range diverged from the stored bytes";
  return out;
}

void expect_same_payload(const RunOutcome& a, const RunOutcome& b,
                         const std::string& label) {
  EXPECT_EQ(a.extracts, b.extracts) << label;
  EXPECT_EQ(a.prange, b.prange) << label;
  EXPECT_DOUBLE_EQ(a.meta_time, b.meta_time) << label;
  EXPECT_EQ(a.meta_cycle, b.meta_cycle) << label;
  EXPECT_EQ(a.n_particles, b.n_particles) << label;
}

// ---------------------------------------------------------------------------
// Oracle matrix: backends x schedule seeds x engine backends.
// ---------------------------------------------------------------------------

class QueryDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryDifferential, AllBackendsAllEnginesMatchTheOracle) {
  const std::uint64_t seed = GetParam();
  for (Kind kind : kAllKinds) {
    RunConfig cfg;
    cfg.kind = kind;
    cfg.seed = seed;
    cfg.engine = sim::SchedBackend::kFibers;
    const RunOutcome fibers = run_query(cfg);
    EXPECT_EQ(fibers.index.format, format_of(kind));
    EXPECT_EQ(fibers.index_builds, 1u);
    EXPECT_GT(fibers.demand_fetches, 0u);
    // Four identical readers share one cache: the physical fetch count is
    // bounded by one reader's block touches, never scaled by N.
    EXPECT_LE(fibers.demand_fetches, fibers.rank0_blocks);
    EXPECT_GT(fibers.cache_hits, 0u);

    cfg.engine = sim::SchedBackend::kThreads;
    const RunOutcome threads = run_query(cfg);
    const std::string label = std::string(to_cstr(kind)) + "/seed" +
                              std::to_string(seed) + " fibers-vs-threads";
    expect_same_payload(fibers, threads, label);
    // Physical-read accounting is schedule-invariant: same demand fetches,
    // same bytes, same planned runs on either engine.
    EXPECT_EQ(fibers.demand_fetches, threads.demand_fetches) << label;
    EXPECT_EQ(fibers.fetched_bytes, threads.fetched_bytes) << label;
    EXPECT_EQ(fibers.planned_runs, threads.planned_runs) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(SchedSeeds, QueryDifferential,
                         ::testing::Values(0ull, 1ull, 2ull),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(QueryDifferential, CountersAreSeedInvariant) {
  RunConfig cfg;
  cfg.kind = Kind::kHdf5;
  cfg.seed = 0;
  const RunOutcome base = run_query(cfg);
  for (std::uint64_t seed : {1ull, 2ull}) {
    cfg.seed = seed;
    const RunOutcome o = run_query(cfg);
    const std::string label = "hdf5 seed0-vs-seed" + std::to_string(seed);
    expect_same_payload(base, o, label);
    EXPECT_EQ(base.demand_fetches, o.demand_fetches) << label;
    EXPECT_EQ(base.fetched_bytes, o.fetched_bytes) << label;
    EXPECT_EQ(base.planned_runs, o.planned_runs) << label;
  }
}

// ---------------------------------------------------------------------------
// Cache behaviour: on/off identity, cold/warm, tiny capacity, overlap,
// sieving off.
// ---------------------------------------------------------------------------

TEST(QueryCache, SharedCacheCutsPhysicalReadsWithoutChangingBytes) {
  RunConfig on;
  on.kind = Kind::kMpiIo;
  RunConfig off = on;
  off.cache_enabled = false;
  const RunOutcome with_cache = run_query(on);
  const RunOutcome without = run_query(off);
  expect_same_payload(with_cache, without, "cache on-vs-off");
  // Four readers of the same regions: the shared cache collapses their
  // physical traffic; uncached every reader pays its own fetches.
  EXPECT_LT(with_cache.fetched_bytes, without.fetched_bytes);
  EXPECT_GT(with_cache.cache_hits, 0u);
  EXPECT_EQ(without.cache_hits, 0u);
  EXPECT_EQ(without.demand_fetches, 0u);
}

TEST(QueryCache, WarmReplayIsServedEntirelyFromCache) {
  RunConfig cfg;
  cfg.kind = Kind::kHdf5;
  cfg.warm_pass = true;
  const RunOutcome o = run_query(cfg);
  EXPECT_GT(o.warm_plan.blocks, 0u);
  EXPECT_EQ(o.warm_plan.cache_misses, 0u);
  EXPECT_EQ(o.warm_plan.cache_hits, o.warm_plan.blocks);
}

TEST(QueryCache, TinyCapacityEvictsButStaysByteIdentical) {
  RunConfig cfg;
  cfg.kind = Kind::kMpiIo;
  cfg.cache_capacity = 16 * KiB;  // 4 blocks of 4 KiB
  RunConfig ample = cfg;
  ample.cache_capacity = 256 * MiB;
  const RunOutcome tiny = run_query(cfg);  // oracle-checked inside
  const RunOutcome big = run_query(ample);
  expect_same_payload(tiny, big, "tiny-vs-ample cache");
  EXPECT_GT(tiny.cache_evictions, 0u);
  EXPECT_EQ(big.cache_evictions, 0u);
}

TEST(QueryCache, PrefetchOverlapMatchesAndPrefetches) {
  RunConfig plain;
  plain.kind = Kind::kHdf5;
  RunConfig overlapped = plain;
  overlapped.overlap = true;
  const RunOutcome base = run_query(plain);
  const RunOutcome pre = run_query(overlapped);
  expect_same_payload(base, pre, "overlap on-vs-off");
  EXPECT_GT(pre.prefetches, 0u);
  EXPECT_EQ(base.prefetches, 0u);
}

TEST(QueryCache, SievingOffTakesExactReadsWithIdenticalBytes) {
  RunConfig sieved;
  sieved.kind = Kind::kPnetcdf;
  RunConfig exact = sieved;
  exact.sieving = false;
  const RunOutcome a = run_query(sieved);
  const RunOutcome b = run_query(exact);
  expect_same_payload(a, b, "sieving on-vs-off");
  EXPECT_EQ(b.cache_hits, 0u);
  EXPECT_EQ(b.demand_fetches, 0u);
  EXPECT_EQ(b.slice_plan.blocks, 0u);
}

// ---------------------------------------------------------------------------
// Faults: the read phase absorbs transient errors and short reads.
// ---------------------------------------------------------------------------

fault::FaultPlan read_fault_plan() {
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::FaultSpec transient;
  transient.kind = fault::FaultKind::kTransientError;
  transient.path_substr = std::string(kSeries) + ".g0";
  transient.match_writes = false;
  transient.probability = 0.3;
  transient.max_consecutive = 2;
  plan.specs.push_back(transient);
  fault::FaultSpec shorty;
  shorty.kind = fault::FaultKind::kShortRead;
  shorty.path_substr = std::string(kSeries) + ".g0";
  shorty.match_writes = false;
  shorty.probability = 0.3;
  shorty.short_fraction = 0.5;
  shorty.max_consecutive = 2;
  plan.specs.push_back(shorty);
  return plan;
}

TEST(QueryFaults, TransientErrorsAndShortReadsConverge) {
  RunConfig clean;
  clean.kind = Kind::kHdf5;
  const RunOutcome base = run_query(clean);

  fault::Injector inj(read_fault_plan());
  RunConfig faulted = clean;
  faulted.faults = &inj;
  faulted.retries = 8;
  const RunOutcome o = run_query(faulted);  // oracle-checked inside
  expect_same_payload(base, o, "faulted read phase");
  EXPECT_GT(inj.counters().injected_total(), 0u);
  EXPECT_GT(o.io_retries, 0u);
}

TEST(QueryFaults, StagedFacadeWithFaultedStagingTierConverges) {
  RunConfig direct;
  direct.kind = Kind::kMpiIo;
  const RunOutcome base = run_query(direct);

  fault::Injector inj(read_fault_plan());
  RunConfig staged = direct;
  staged.staged = true;
  staged.faults = &inj;
  staged.retries = 8;
  const RunOutcome o = run_query(staged);  // oracle-checked inside
  expect_same_payload(base, o, "staged+faulted read phase");
  EXPECT_GT(inj.counters().injected_total(), 0u);
}

// ---------------------------------------------------------------------------
// Catalog persistence: indexes survive the process, tombstones stick, v1
// catalog files still load.
// ---------------------------------------------------------------------------

TEST(QueryCatalog, IndexPersistsAndServesAFreshService) {
  mdms::Catalog catalog;
  RunConfig cfg;
  cfg.kind = Kind::kHdf5;
  cfg.catalog = &catalog;
  const RunOutcome built = run_query(cfg);
  EXPECT_EQ(built.index_builds, 1u);
  EXPECT_EQ(built.index_loads, 0u);
  const std::vector<std::byte>* blob = catalog.series_index(kSeries, 0);
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(query::GenerationIndex::deserialize(*blob).serialize(), *blob);

  // A second session over an identical dump is served from the catalog:
  // no re-inspection, byte-identical answers (the oracle inside run_query
  // validates the *loaded* index against the new store).
  const RunOutcome loaded = run_query(cfg);
  EXPECT_EQ(loaded.index_builds, 0u);
  EXPECT_EQ(loaded.index_loads, 1u);
  expect_same_payload(built, loaded, "built-vs-loaded index");

  // Save/load keeps the blob; tombstones survive the round trip so a stale
  // file can never resurrect a dropped generation.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::Options so;
  so.nprocs = 1;
  sim::Engine::run(so, [&](sim::Proc&) {
    catalog.save(fs, "catalog.mdms");
    mdms::Catalog back = mdms::Catalog::load(fs, "catalog.mdms");
    const std::vector<std::byte>* rblob = back.series_index(kSeries, 0);
    ASSERT_NE(rblob, nullptr);
    EXPECT_EQ(*rblob, *blob);
    EXPECT_EQ(back.series_generations(kSeries),
              (std::vector<std::uint64_t>{0}));

    back.drop_series_index(kSeries, 0);
    EXPECT_EQ(back.series_index(kSeries, 0), nullptr);
    EXPECT_TRUE(back.series_generations(kSeries).empty());
    back.save(fs, "catalog.mdms");
    mdms::Catalog again = mdms::Catalog::load(fs, "catalog.mdms");
    EXPECT_EQ(again.series_index(kSeries, 0), nullptr);
    again.put_series_index(kSeries, 0, *blob);
    EXPECT_NE(again.series_index(kSeries, 0), nullptr);
  });
}

TEST(QueryCatalog, VersionOneCatalogFilesStillLoad) {
  ByteWriter w;
  w.u32(0x534D444D);  // "MDMS", the version-less records-only format
  w.u64(0);           // no records
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::Options so;
  so.nprocs = 1;
  sim::Engine::run(so, [&](sim::Proc&) {
    auto bytes = w.take();
    int fd = fs.open("old.mdms", pfs::OpenMode::kCreate);
    fs.write_at(fd, 0, bytes);
    fs.close(fd);
    mdms::Catalog c = mdms::Catalog::load(fs, "old.mdms");
    EXPECT_EQ(c.size(), 0u);
    EXPECT_TRUE(c.series_generations(kSeries).empty());
  });
}

// ---------------------------------------------------------------------------
// Commit-marker discipline: only committed generations are served.
// ---------------------------------------------------------------------------

TEST(QueryService, UncommittedAndTornGenerationsAreRejected) {
  platform::Testbed tb(platform::chiba_pvfs_ethernet(), kProcs);
  query::Service svc(tb.fs(), kSeries, query::Service::Params{});
  tb.runtime().run([&](mpi::Comm& c) {
    auto backend = make_backend(Kind::kMpiIo, tb.fs());
    enzo::EnzoSimulation sim(c, workload());
    sim.initialize_from_universe();
    sim.evolve_cycle();
    enzo::CheckpointSeries series(*backend, tb.fs(), kSeries);
    series.dump(c, sim.state(), 0);
    c.barrier();
    if (c.rank() == 0) {
      // Generation 1 was never dumped.
      EXPECT_THROW(svc.metadata(1), IoError);
      // Generation 2 has a marker-shaped file with the wrong magic: torn.
      ByteWriter w;
      w.u64(0xDEADBEEFDEADBEEFULL);
      w.u64(2);
      auto bytes = w.take();
      int fd = tb.fs().open(std::string(kSeries) + ".g2.ok",
                            pfs::OpenMode::kCreate);
      tb.fs().write_at(fd, 0, bytes);
      tb.fs().close(fd);
      EXPECT_THROW(svc.metadata(2), IoError);
      // Generation 0 is committed and serves normally.
      EXPECT_EQ(svc.metadata(0).cycle, sim.state().cycle);
    }
    c.barrier();
  });
}

}  // namespace
}  // namespace paramrio
