// Rank-scalability and scheduler-backend acceptance tests (docs/SCALING.md):
//
//  * differential: the fiber and thread scheduler backends must produce
//    byte-identical ENZO runs — same dumped files, same integer counters,
//    same virtual clocks — across all four I/O backends and across schedule
//    perturbation seeds;
//  * scale smoke: one process simulates a 4096-rank ENZO dump + restart on
//    the striped file system inside a bounded peak RSS;
//  * multi-job tenancy: jobs sharing one file system contend under
//    weighted fair share, while a job running alone stays bit-identical to
//    the single-tenant code path.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "harness.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "pfs/local_fs.hpp"
#include "pfs/striped_fs.hpp"
#include "platform/machine.hpp"
#include "stor/disk.hpp"

namespace paramrio {
namespace {

using bench::Backend;
using bench::RunSpec;

/// FNV-1a per stored file — the cross-run comparison unit.
std::map<std::string, std::uint64_t> store_checksums(
    const stor::ObjectStore& store) {
  std::map<std::string, std::uint64_t> sums;
  for (const auto& name : store.list()) {
    std::vector<std::byte> bytes(store.size(name));
    if (!bytes.empty()) store.read_at(name, 0, bytes);
    std::uint64_t h = 1469598103934665603ULL;
    for (std::byte b : bytes) {
      h ^= static_cast<std::uint64_t>(b);
      h *= 1099511628211ULL;
    }
    sums.emplace(name, h);
  }
  return sums;
}

/// Peak resident set (VmHWM) of this process in KiB; each gtest test runs
/// in its own process under ctest, so the number belongs to this test alone.
std::uint64_t peak_rss_kib() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::stoull(line.substr(6));
    }
  }
  return 0;
}

enzo::SimulationConfig tiny_config() {
  enzo::SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;
  c.n_clumps = 4;
  c.refine.min_box = 2;
  c.compute_per_cell = 0.0;
  return c;
}

/// One full ENZO dump + restart on a LocalFs with everything observable
/// recorded: per-file checksums, per-rank virtual clocks, and the integer
/// counters of every rank's ProcStats.
struct Fingerprint {
  std::map<std::string, std::uint64_t> files;
  std::vector<double> finish_times;
  std::vector<std::uint64_t> counters;

  bool operator==(const Fingerprint& o) const {
    return files == o.files && finish_times == o.finish_times &&
           counters == o.counters;
  }
};

std::unique_ptr<enzo::IoBackend> make_backend(Backend kind,
                                              pfs::FileSystem& fs) {
  mpi::io::Hints hints;
  switch (kind) {
    case Backend::kHdf4:
      return std::make_unique<enzo::Hdf4SerialBackend>(fs);
    case Backend::kMpiIo:
      return std::make_unique<enzo::MpiIoBackend>(fs, hints);
    case Backend::kHdf5: {
      hdf5::FileConfig cfg;
      cfg.io_hints = hints;
      return std::make_unique<enzo::Hdf5ParallelBackend>(fs, cfg);
    }
    case Backend::kPnetcdf:
      return std::make_unique<enzo::PnetcdfBackend>(fs, hints);
  }
  throw LogicError("bad backend kind");
}

Fingerprint run_enzo_fingerprint(Backend kind, sim::SchedBackend sched,
                                 std::uint64_t perturb) {
  const int p = 8;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::RuntimeParams rp;
  rp.nprocs = p;
  rp.perturb_seed = perturb;
  rp.backend = sched;
  mpi::Runtime rt(rp);
  const enzo::SimulationConfig cfg = tiny_config();
  auto res = rt.run([&](mpi::Comm& c) {
    auto backend = make_backend(kind, fs);
    enzo::EnzoSimulation sim(c, cfg);
    sim.initialize_from_universe();
    sim.evolve_cycle();
    backend->write_dump(c, sim.state(), "dump");
    enzo::EnzoSimulation sim2(c, cfg);
    backend->read_restart(c, sim2.state(), "dump");
  });
  Fingerprint fp;
  fp.files = store_checksums(fs.store());
  fp.finish_times = res.finish_times;
  for (const sim::ProcStats& s : res.stats) {
    fp.counters.insert(fp.counters.end(),
                       {s.bytes_sent, s.bytes_received, s.messages_sent,
                        s.io_bytes_read, s.io_bytes_written, s.io_requests});
  }
  fp.counters.push_back(fs.cache_hits());
  fp.counters.push_back(fs.fs_retries());
  return fp;
}

constexpr Backend kAllBackends[] = {Backend::kHdf4, Backend::kMpiIo,
                                    Backend::kHdf5, Backend::kPnetcdf};

class SchedulerDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

// The tentpole acceptance property: swapping the scheduler backend changes
// nothing observable — files, virtual clocks, and integer counters are all
// byte-identical, for every I/O backend, clean and perturbed alike.
TEST_P(SchedulerDifferential, FiberAndThreadBackendsAreByteIdentical) {
  const std::uint64_t perturb = GetParam();
  for (Backend kind : kAllBackends) {
    auto fib = run_enzo_fingerprint(kind, sim::SchedBackend::kFibers, perturb);
    auto thr = run_enzo_fingerprint(kind, sim::SchedBackend::kThreads, perturb);
    EXPECT_TRUE(fib == thr)
        << bench::to_string(kind) << " perturb=" << perturb
        << ": fiber and thread runs diverged";
    EXPECT_FALSE(fib.files.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerDifferential,
                         ::testing::Values(0ull, 1ull, 2ull),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// A perturbed schedule is a genuinely different interleaving (the engine
// draws different tie-breaks), yet it must still converge to the same files.
TEST(SchedulerDifferential, PerturbationChangesScheduleNotBytes) {
  auto a = run_enzo_fingerprint(Backend::kMpiIo, sim::SchedBackend::kFibers, 0);
  auto b = run_enzo_fingerprint(Backend::kMpiIo, sim::SchedBackend::kFibers, 7);
  EXPECT_EQ(a.files, b.files);
  EXPECT_EQ(a.finish_times, b.finish_times);
}

// ---------------------------------------------------------------------------
// Scale smoke: 4096 ranks in one process, bounded memory.
// ---------------------------------------------------------------------------

TEST(ScaleSmoke, FourKRankDumpRestartOnStripedFsBoundedMemory) {
  if (sim::Engine::Options{}.effective_backend() !=
      sim::SchedBackend::kFibers) {
    GTEST_SKIP() << "fiber backend unavailable (TSan or forced threads); "
                    "4096 OS threads is exactly the wall this test guards";
  }
  const int p = 4096;
  RunSpec spec;
  spec.machine = platform::chiba_pvfs_ethernet();
  spec.config = tiny_config();
  spec.config.root_dims = {32, 32, 32};
  spec.config.particles_per_cell = 0.0;
  spec.nprocs = p;
  // The serial-HDF4 path is the period-accurate choice at extreme rank
  // counts: gatherv is O(P) messages where the pairwise alltoallv of the
  // parallel backends is O(P^2).
  spec.backend = Backend::kHdf4;
  spec.evolve_cycles = 0;

  bench::IoResult r = bench::run_enzo_io(spec);
  EXPECT_GT(r.fs_bytes_written, 0u);
  EXPECT_GT(r.fs_bytes_read, 0u);
  EXPECT_GT(r.write_time, 0.0);
  EXPECT_GT(r.read_time, 0.0);

  // Bounded memory: 4096 ranks must fit comfortably in one process.  Fiber
  // stacks are lazily-committed mmaps, so the bound holds with margin; the
  // one-thread-per-rank engine needed a pthread per rank just to exist.
  const std::uint64_t peak_kib = peak_rss_kib();
  ASSERT_GT(peak_kib, 0u);
  EXPECT_LT(peak_kib, 3u * 1024 * 1024)
      << "peak RSS " << peak_kib << " KiB exceeds the 3 GiB budget";
}

// ---------------------------------------------------------------------------
// Multi-job tenancy.
// ---------------------------------------------------------------------------

/// Shared-storage fixture: a StripedFs on its own storage fabric sized for
/// `total_ranks` global clients, so any mix of jobs can reach it.
struct SharedStorage {
  net::Network net;
  pfs::StripedFs fs;
  explicit SharedStorage(int total_ranks)
      : net(net::NetworkParams{}, total_ranks,
            pfs::StripedFsParams{}.n_io_nodes),
        fs(pfs::StripedFsParams{}, net) {}
};

/// The per-job workload: every rank writes then reads back `chunks` private
/// 512 KiB blocks of a job-private file.  Each request spans all 8 default
/// stripe servers, so concurrent jobs necessarily meet at every I/O node —
/// a 64 KiB (single-stripe) stream would rotate through the servers in
/// lockstep and could dodge a contender forever.
void io_workload(mpi::Comm& c, pfs::FileSystem& fs, const std::string& file,
                 int chunks) {
  constexpr std::uint64_t kChunk = 512 * KiB;
  std::vector<std::byte> buf(kChunk, std::byte{0x5A});
  int fd = fs.open(file + "." + std::to_string(c.rank()),
                   pfs::OpenMode::kCreate);
  for (int i = 0; i < chunks; ++i) {
    fs.write_at(fd, static_cast<std::uint64_t>(i) * kChunk, buf);
  }
  for (int i = 0; i < chunks; ++i) {
    fs.read_at(fd, static_cast<std::uint64_t>(i) * kChunk, buf);
  }
  fs.close(fd);
  c.barrier();
}

mpi::RuntimeParams job_params(int n) {
  mpi::RuntimeParams rp;
  rp.nprocs = n;
  return rp;
}

TEST(MultiJob, LoneJobIsBitIdenticalToSingleTenantRun) {
  auto single = [&] {
    SharedStorage st(4);
    mpi::Runtime rt(job_params(4));
    return rt.run([&](mpi::Comm& c) { io_workload(c, st.fs, "ckpt", 8); })
        .makespan;
  }();
  auto multi = [&] {
    SharedStorage st(4);
    std::vector<mpi::MultiRuntime::Job> jobs(1);
    jobs[0].name = "solo";
    jobs[0].params = job_params(4);
    jobs[0].body = [&](mpi::Comm& c) { io_workload(c, st.fs, "ckpt", 8); };
    auto res = mpi::MultiRuntime::run(std::move(jobs));
    return res[0].result.makespan;
  }();
  // Fair-share arbitration with one active job reduces to FIFO exactly;
  // a lone tenant must not be able to tell the code paths apart.
  EXPECT_DOUBLE_EQ(single, multi);
}

TEST(MultiJob, ContendingJobsAreSlowerThanAlone) {
  auto solo = [&] {
    SharedStorage st(8);
    std::vector<mpi::MultiRuntime::Job> jobs(1);
    jobs[0].name = "a";
    jobs[0].params = job_params(4);
    jobs[0].body = [&](mpi::Comm& c) { io_workload(c, st.fs, "a", 16); };
    return mpi::MultiRuntime::run(std::move(jobs))[0].result.makespan;
  }();

  SharedStorage st(8);
  std::vector<mpi::MultiRuntime::Job> jobs(2);
  jobs[0].name = "a";
  jobs[0].params = job_params(4);
  jobs[0].body = [&](mpi::Comm& c) { io_workload(c, st.fs, "a", 16); };
  jobs[1].name = "b";
  jobs[1].params = job_params(4);
  jobs[1].body = [&](mpi::Comm& c) { io_workload(c, st.fs, "b", 16); };
  auto res = mpi::MultiRuntime::run(std::move(jobs));
  ASSERT_EQ(res.size(), 2u);
  // Equal weights: both jobs see roughly half the device, so each takes
  // longer than it would alone — and neither is starved.
  EXPECT_GT(res[0].result.makespan, solo);
  EXPECT_GT(res[1].result.makespan, solo);
  const double ratio = res[0].result.makespan / res[1].result.makespan;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(MultiJob, WeightBiasesTheDeviceShare) {
  auto makespans = [&](double wa, double wb) {
    SharedStorage st(8);
    std::vector<mpi::MultiRuntime::Job> jobs(2);
    jobs[0].name = "a";
    jobs[0].params = job_params(4);
    jobs[0].weight = wa;
    jobs[0].body = [&](mpi::Comm& c) { io_workload(c, st.fs, "a", 16); };
    jobs[1].name = "b";
    jobs[1].params = job_params(4);
    jobs[1].weight = wb;
    jobs[1].body = [&](mpi::Comm& c) { io_workload(c, st.fs, "b", 16); };
    auto res = mpi::MultiRuntime::run(std::move(jobs));
    return std::pair<double, double>(res[0].result.makespan,
                                     res[1].result.makespan);
  };
  auto [ea, eb] = makespans(1.0, 1.0);
  auto [ha, hb] = makespans(4.0, 1.0);
  // Boosting job a's weight speeds it up at job b's expense.
  EXPECT_LT(ha, ea);
  EXPECT_GE(hb, eb);
}

TEST(MultiJob, PerJobCounterScopesAppearOnlyWhenMultiTenant) {
  auto scopes_of = [&](int njobs) {
    SharedStorage st(8);
    std::vector<mpi::MultiRuntime::Job> jobs(
        static_cast<std::size_t>(njobs));
    for (int j = 0; j < njobs; ++j) {
      jobs[static_cast<std::size_t>(j)].name = std::string(1, 'a' + j);
      jobs[static_cast<std::size_t>(j)].params = job_params(2);
      jobs[static_cast<std::size_t>(j)].body = [&st, j](mpi::Comm& c) {
        io_workload(c, st.fs, std::string(1, 'a' + j), 4);
      };
    }
    mpi::MultiRuntime::run(std::move(jobs));
    obs::MetricsRegistry reg;
    st.fs.export_counters(reg);
    std::vector<std::string> with_job;
    for (const auto& entry : reg.scopes()) {
      if (entry.first.find("|job:") != std::string::npos) {
        with_job.push_back(entry.first);
      }
    }
    return with_job;
  };
  // Single tenant: exports stay byte-identical to previous releases.
  EXPECT_TRUE(scopes_of(1).empty());
  // Two tenants: each gets its per-job traffic scope.
  auto multi = scopes_of(2);
  EXPECT_FALSE(multi.empty());
  bool saw_a = false, saw_b = false;
  for (const auto& s : multi) {
    if (s.find("|job:a") != std::string::npos) saw_a = true;
    if (s.find("|job:b") != std::string::npos) saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

/// A contended two-job run with detail telemetry on; returns the collector's
/// whole detail surface for cross-engine/cross-seed comparison.
struct DetailRun {
  std::string fingerprint;   ///< integer gauge tracks, values only
  std::string registry_json; ///< full registry incl. hist:/timeline: scopes
};

DetailRun detail_run(sim::SchedBackend backend, std::uint64_t seed) {
  obs::Collector col;
  col.set_detail(true);
  SharedStorage st(8);
  std::vector<mpi::MultiRuntime::Job> jobs(2);
  jobs[0].name = "a";
  jobs[0].params = job_params(4);
  jobs[0].params.backend = backend;
  jobs[0].params.perturb_seed = seed;
  jobs[0].body = [&st](mpi::Comm& c) { io_workload(c, st.fs, "a", 8); };
  jobs[1].name = "b";
  jobs[1].params = job_params(4);
  jobs[1].body = [&st](mpi::Comm& c) { io_workload(c, st.fs, "b", 8); };
  obs::attach(&col);
  mpi::MultiRuntime::run(std::move(jobs));
  obs::detach();
  col.export_detail();
  DetailRun r;
  r.fingerprint = col.timeline().integer_fingerprint();
  r.registry_json = col.registry().to_json(2);
  return r;
}

// Satellite 3: the detail surface — Timeline and Histogram registry scopes —
// exports byte-identically whether ranks run as fibers or OS threads, and
// the integer gauge tracks survive schedule perturbation untouched.
TEST(MultiJob, DetailExportIsEngineInvariantAndSeedStable) {
  const DetailRun fib = detail_run(sim::SchedBackend::kFibers, 0);
  ASSERT_FALSE(fib.fingerprint.empty());
  EXPECT_NE(fib.fingerprint.find("/job:"), std::string::npos)
      << "two contending jobs must surface per-job gauge tracks";
  EXPECT_NE(fib.registry_json.find("\"timeline:"), std::string::npos);
  EXPECT_NE(fib.registry_json.find("\"hist:"), std::string::npos);

  // Fiber vs thread: the engines are byte-identical, so the *entire* detail
  // registry (double-valued histogram stats included) must match.
  const DetailRun thr = detail_run(sim::SchedBackend::kThreads, 0);
  EXPECT_EQ(thr.fingerprint, fib.fingerprint);
  EXPECT_EQ(thr.registry_json, fib.registry_json);

  // Across perturbation seeds only the integer value sequences are promised
  // (timestamps of tied events may legitimately shift).
  for (std::uint64_t seed : {1ull, 2ull}) {
    EXPECT_EQ(detail_run(sim::SchedBackend::kFibers, seed).fingerprint,
              fib.fingerprint)
        << "seed " << seed;
  }
}

// Satellite 6 at the timeline level: a lone tenant's detail telemetry has no
// per-job tracks at all — those exist only on genuinely multi-tenant runs.
TEST(MultiJob, LoneTenantDetailHasNoPerJobTracks) {
  obs::Collector col;
  col.set_detail(true);
  SharedStorage st(4);
  std::vector<mpi::MultiRuntime::Job> jobs(1);
  jobs[0].name = "solo";
  jobs[0].params = job_params(4);
  jobs[0].body = [&st](mpi::Comm& c) { io_workload(c, st.fs, "solo", 8); };
  obs::attach(&col);
  mpi::MultiRuntime::run(std::move(jobs));
  obs::detach();
  EXPECT_FALSE(col.timeline().empty());
  for (const auto& [name, track] : col.timeline().tracks()) {
    EXPECT_EQ(name.find("/job:"), std::string::npos)
        << "per-job track on a lone-tenant run: " << name;
  }
  obs::MetricsRegistry reg;
  st.fs.export_counters(reg);
  for (const auto& [scope, data] : reg.scopes()) {
    EXPECT_EQ(scope.find("|job:"), std::string::npos) << scope;
  }
}

// ---------------------------------------------------------------------------
// Fair-share arbitration at one I/O server (unit level).
// ---------------------------------------------------------------------------

TEST(FairShare, SingleJobMatchesPlainFifoExactly) {
  stor::DiskParams dp;
  stor::IoServer fifo(dp), fair(dp);
  double t_fifo = 0.0, t_fair = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto off = static_cast<std::uint64_t>(i) * 4096;
    t_fifo = fifo.serve(t_fifo, "f", off, 4096, i % 2 == 0);
    t_fair = fair.serve(t_fair, "f", off, 4096, i % 2 == 0, 0.0,
                        /*job=*/0, /*weight=*/1.0);
    EXPECT_DOUBLE_EQ(t_fair, t_fifo) << "request " << i;
  }
}

TEST(FairShare, BackloggedTenantsStretchEachOther) {
  stor::DiskParams dp;
  stor::IoServer srv(dp);
  // Job 0 builds a backlog; job 1's request issued inside that backlog is
  // stretched by (w0 + w1) / w1 = 2 relative to its raw service time.
  const double c0 = srv.serve(0.0, "a", 0, 1 * MiB, true, 0.0, 0, 1.0);
  const double raw = srv.serve(0.0, "b0", 0, 64 * KiB, true);  // FIFO probe
  (void)raw;
  stor::IoServer fresh(dp);
  const double alone = fresh.serve(0.0, "b", 0, 64 * KiB, true, 0.0, 1, 1.0);
  const double contended = srv.serve(0.0, "b", 0, 64 * KiB, true, 0.0, 1, 1.0);
  EXPECT_GT(contended, alone);
  EXPECT_LT(contended, c0 + alone);  // not FIFO-serialised behind job 0
  const auto& shares = srv.job_shares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares.at(0).requests, 1u);
  EXPECT_EQ(shares.at(1).requests, 1u);
}

}  // namespace
}  // namespace paramrio
