// Tests for the I/O tracer (the paper's analysis methodology) and the MDMS
// catalog/advisor (the paper's future-work direction, implemented).
#include <gtest/gtest.h>

#include "mdms/catalog.hpp"
#include "pfs/local_fs.hpp"
#include "sim/engine.hpp"
#include "trace/io_tracer.hpp"

namespace paramrio {
namespace {

sim::Engine::Options opts(int n) {
  sim::Engine::Options o;
  o.nprocs = n;
  return o;
}

TEST(IoTracer, RecordsAttachedFileSystemTraffic) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  trace::IoTracer tracer;
  fs.attach_observer(&tracer);
  sim::Engine::run(opts(2), [&](sim::Proc& p) {
    if (p.rank() == 0) {
      int fd = fs.open("a", pfs::OpenMode::kCreate);
      std::vector<std::byte> data(1000);
      fs.write_at(fd, 0, data);
      fs.write_at(fd, 1000, data);
      fs.close(fd);
    }
    p.advance(1.0);
    if (p.rank() == 1) {
      int fd = fs.open("a", pfs::OpenMode::kRead);
      std::vector<std::byte> out(500);
      fs.read_at(fd, 0, out);
      fs.close(fd);
    }
  });
  // 3 data requests plus 2 opens and 2 closes (descriptor lifecycle).
  ASSERT_EQ(tracer.events().size(), 7u);
  std::vector<trace::IoEvent> data_events;
  for (const trace::IoEvent& e : tracer.events()) {
    if (e.is_data()) data_events.push_back(e);
  }
  ASSERT_EQ(data_events.size(), 3u);
  EXPECT_TRUE(data_events[0].is_write);
  EXPECT_EQ(data_events[0].rank, 0);
  EXPECT_FALSE(data_events[2].is_write);
  EXPECT_EQ(data_events[2].rank, 1);
  EXPECT_EQ(data_events[2].bytes, 500u);

  auto r = tracer.analyze();
  EXPECT_EQ(r.writes.requests, 2u);
  EXPECT_EQ(r.writes.bytes, 2000u);
  EXPECT_EQ(r.reads.requests, 1u);
  EXPECT_EQ(r.opens, 2u);
  EXPECT_EQ(r.closes, 2u);
  EXPECT_EQ(r.files_touched, 1u);
  EXPECT_EQ(r.ranks_active, 2u);
  EXPECT_EQ(r.per_file_bytes.at("a"), 2500u);
  // Second write was sequential after the first.
  EXPECT_DOUBLE_EQ(r.writes.sequential_fraction, 0.5);
}

TEST(IoTracer, DetachStopsRecording) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  trace::IoTracer tracer;
  fs.attach_observer(&tracer);
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int fd = fs.open("a", pfs::OpenMode::kCreate);
    std::vector<std::byte> data(10);
    fs.write_at(fd, 0, data);
    fs.attach_observer(nullptr);
    fs.write_at(fd, 10, data);
    fs.close(fd);
  });
  // One open and one write before the detach; nothing after.
  EXPECT_EQ(tracer.events().size(), 2u);
  auto r = tracer.analyze();
  EXPECT_EQ(r.writes.requests, 1u);
  EXPECT_EQ(r.closes, 0u);
}

TEST(IoTracer, SizeHistogramBuckets) {
  trace::IoTracer t;
  t.record(0.0, 0, true, "f", 0, 1);        // bucket 0
  t.record(0.0, 0, true, "f", 1, 1024);     // bucket 10
  t.record(0.0, 0, true, "f", 2000, 1025);  // bucket 10 (floor log2)
  t.record(0.0, 0, true, "f", 9000, 65536); // bucket 16
  auto r = t.analyze();
  EXPECT_EQ(r.writes.size_histogram[0], 1u);
  EXPECT_EQ(r.writes.size_histogram[10], 2u);
  EXPECT_EQ(r.writes.size_histogram[16], 1u);
  EXPECT_EQ(r.writes.min_request, 1u);
  EXPECT_EQ(r.writes.max_request, 65536u);
}

TEST(IoTracer, SizeHistogramBucketBoundaries) {
  trace::IoTracer t;
  t.record(0.0, 0, true, "f", 0, 0);  // size 0 -> bucket 0
  t.record(0.0, 0, true, "f", 0, 1);  // size 1 -> bucket 0
  t.record(0.0, 0, true, "f", 0, 2);  // exactly 2^1 -> bucket 1
  t.record(0.0, 0, true, "f", 0, 3);  // floor(log2 3) = 1
  t.record(0.0, 0, true, "f", 0, 4);  // exactly 2^2 -> bucket 2
  t.record(0.0, 0, true, "f", 0, (1ull << 20));      // exactly 2^20
  t.record(0.0, 0, true, "f", 0, (1ull << 20) - 1);  // bucket 19
  t.record(0.0, 0, true, "f", 0, (1ull << 20) + 1);  // bucket 20
  auto r = t.analyze();
  EXPECT_EQ(r.writes.size_histogram[0], 2u);
  EXPECT_EQ(r.writes.size_histogram[1], 2u);
  EXPECT_EQ(r.writes.size_histogram[2], 1u);
  EXPECT_EQ(r.writes.size_histogram[19], 1u);
  EXPECT_EQ(r.writes.size_histogram[20], 2u);
  EXPECT_EQ(r.writes.min_request, 0u);
  EXPECT_EQ(r.writes.max_request, (1ull << 20) + 1);
}

TEST(IoTracer, SequentialFractionIsPerRankAcrossInterleavedRanks) {
  trace::IoTracer t;
  // Two ranks interleaved in time, each strictly sequential in its own half
  // of the file.  Globally the offsets jump around, but sequentiality is
  // tracked per (rank, file): 2 of 4 requests extend the same rank's
  // previous one.
  t.record(0.0, 0, true, "f", 0, 100);
  t.record(0.1, 1, true, "f", 1000, 100);
  t.record(0.2, 0, true, "f", 100, 100);
  t.record(0.3, 1, true, "f", 1100, 100);
  auto r = t.analyze();
  EXPECT_DOUBLE_EQ(r.writes.sequential_fraction, 0.5);
  // Reads are tracked separately from writes.
  t.record(0.4, 0, false, "f", 200, 100);  // not adjacent to any prior READ
  t.record(0.5, 0, false, "f", 300, 100);  // adjacent to the previous read
  r = t.analyze();
  EXPECT_DOUBLE_EQ(r.reads.sequential_fraction, 0.5);
}

TEST(IoTracer, ClearResetsAllStatistics) {
  trace::IoTracer t;
  t.record(1.0, 2, true, "f", 0, 4096);
  t.record_open(1.1, 2, "g", pfs::OpenMode::kCreate, 5);
  ASSERT_EQ(t.events().size(), 2u);
  t.clear();
  EXPECT_TRUE(t.events().empty());
  auto r = t.analyze();
  EXPECT_EQ(r.reads.requests, 0u);
  EXPECT_EQ(r.writes.requests, 0u);
  EXPECT_EQ(r.writes.bytes, 0u);
  EXPECT_EQ(r.opens, 0u);
  EXPECT_EQ(r.files_touched, 0u);
  EXPECT_EQ(r.ranks_active, 0u);
  EXPECT_DOUBLE_EQ(r.first_time, 0.0);
  EXPECT_DOUBLE_EQ(r.last_time, 0.0);
  EXPECT_DOUBLE_EQ(r.writes.sequential_fraction, 0.0);
}

TEST(IoTracer, LifecycleEventsAreRecordedButNotCountedAsData) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  trace::IoTracer tracer;
  fs.attach_observer(&tracer);
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    int fd = fs.open("a", pfs::OpenMode::kCreate);
    std::vector<std::byte> data(100);
    fs.write_at(fd, 0, data);
    fs.close(fd);
  });
  ASSERT_EQ(tracer.events().size(), 3u);  // open, write, close
  EXPECT_EQ(tracer.events()[0].op, trace::IoOp::kOpen);
  EXPECT_EQ(tracer.events()[0].mode, pfs::OpenMode::kCreate);
  EXPECT_EQ(tracer.events()[1].op, trace::IoOp::kWrite);
  EXPECT_EQ(tracer.events()[1].fd, tracer.events()[0].fd);
  EXPECT_EQ(tracer.events()[2].op, trace::IoOp::kClose);
  auto r = tracer.analyze();
  EXPECT_EQ(r.opens, 1u);
  EXPECT_EQ(r.closes, 1u);
  EXPECT_EQ(r.writes.requests, 1u);  // lifecycle events are not data
  EXPECT_EQ(r.writes.bytes, 100u);
  EXPECT_EQ(r.writes.min_request, 100u);  // open's size-0 doesn't pollute
}

TEST(IoTracer, FormatReportMentionsKeyNumbers) {
  trace::IoTracer t;
  t.record(0.5, 0, false, "f", 0, 4096);
  std::string s = t.format_report("unit test");
  EXPECT_NE(s.find("unit test"), std::string::npos);
  EXPECT_NE(s.find("1 requests"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MDMS
// ---------------------------------------------------------------------------

TEST(MdmsCatalog, RegisterLookupAndOrder) {
  mdms::Catalog c;
  mdms::DatasetRecord a;
  a.name = "density";
  a.array_rank = 3;
  a.dims = {64, 64, 64};
  a.element_size = 4;
  a.pattern = mdms::AccessPattern::kRegularBlock;
  c.register_dataset(a);
  mdms::DatasetRecord b;
  b.name = "particle_id";
  b.array_rank = 1;
  b.dims = {1000};
  b.element_size = 8;
  b.pattern = mdms::AccessPattern::kIrregular;
  c.register_dataset(b);

  EXPECT_TRUE(c.has("density"));
  EXPECT_FALSE(c.has("nope"));
  EXPECT_THROW(c.lookup("nope"), IoError);
  EXPECT_EQ(c.lookup("density").total_elements(), 64ull * 64 * 64);
  EXPECT_EQ(c.names(), (std::vector<std::string>{"density", "particle_id"}));
}

TEST(MdmsCatalog, AccessStatisticsAccumulate) {
  mdms::Catalog c;
  c.record_access("x", 1000, true, 0);
  c.record_access("x", 3000, true, 1);
  c.record_access("x", 2000, false, 0);
  const auto& r = c.lookup("x");
  EXPECT_EQ(r.accesses, 3u);
  EXPECT_EQ(r.total_bytes, 6000u);
  EXPECT_EQ(r.typical_request, 2000u);
  EXPECT_EQ(r.writer_count, 2u);
}

TEST(MdmsCatalog, SaveLoadRoundTrip) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  mdms::Catalog c;
  mdms::DatasetRecord a;
  a.name = "density";
  a.array_rank = 3;
  a.dims = {16, 16, 16};
  a.element_size = 4;
  a.pattern = mdms::AccessPattern::kRegularBlock;
  c.register_dataset(a);
  c.record_access("density", 4096, true, 2);
  sim::Engine::run(opts(1), [&](sim::Proc&) {
    c.save(fs, "catalog.mdms");
    mdms::Catalog back = mdms::Catalog::load(fs, "catalog.mdms");
    EXPECT_EQ(back.size(), 1u);
    const auto& r = back.lookup("density");
    EXPECT_EQ(r.dims, (std::vector<std::uint64_t>{16, 16, 16}));
    EXPECT_EQ(r.pattern, mdms::AccessPattern::kRegularBlock);
    EXPECT_EQ(r.accesses, 1u);
    EXPECT_EQ(r.writer_count, 1u);
  });
}

TEST(MdmsCatalog, LearnsPatternsFromTrace) {
  trace::IoTracer t;
  // "blocks": 2 ranks, each strictly sequential in its own half.
  t.record(0.0, 0, true, "blocks", 0, 100);
  t.record(0.1, 1, true, "blocks", 1000, 100);
  t.record(0.2, 0, true, "blocks", 100, 100);
  t.record(0.3, 1, true, "blocks", 1100, 100);
  // "scatter": 2 ranks jumping around.
  t.record(0.0, 0, true, "scatter", 500, 10);
  t.record(0.1, 0, true, "scatter", 0, 10);
  t.record(0.2, 1, true, "scatter", 900, 10);
  t.record(0.3, 1, true, "scatter", 100, 10);
  // "serial": one rank, append-only.
  t.record(0.0, 2, true, "serial", 0, 50);
  t.record(0.1, 2, true, "serial", 50, 50);

  mdms::Catalog c;
  c.learn_from_trace(t);
  EXPECT_EQ(c.lookup("blocks").pattern, mdms::AccessPattern::kRegularBlock);
  EXPECT_EQ(c.lookup("scatter").pattern, mdms::AccessPattern::kIrregular);
  EXPECT_EQ(c.lookup("serial").pattern,
            mdms::AccessPattern::kSequentialAppend);
  EXPECT_EQ(c.lookup("blocks").writer_count, 2u);
}

TEST(MdmsAdvisor, RegularBlocksGetCollectiveUnlessLocked) {
  mdms::DatasetRecord r;
  r.name = "density";
  r.pattern = mdms::AccessPattern::kRegularBlock;
  r.typical_request = 256 * KiB;

  mdms::PlatformTraits open_fs;
  open_fs.shared_file_write_locks = false;
  open_fs.stripe_size = 64 * KiB;
  mdms::Advice a = mdms::advise(r, open_fs);
  EXPECT_TRUE(a.use_collective);
  EXPECT_GE(a.hints.cb_buffer_size, 4 * open_fs.stripe_size);

  mdms::PlatformTraits gpfs;
  gpfs.shared_file_write_locks = true;
  gpfs.io_parallelism = 12;
  mdms::Advice b = mdms::advise(r, gpfs);
  EXPECT_FALSE(b.use_collective);
  EXPECT_GT(b.hints.cb_nodes, 0);
  EXPECT_NE(b.rationale.find("lock"), std::string::npos);
}

TEST(MdmsAdvisor, IrregularAndSequentialCases) {
  mdms::PlatformTraits traits;
  mdms::DatasetRecord irr;
  irr.pattern = mdms::AccessPattern::kIrregular;
  EXPECT_FALSE(mdms::advise(irr, traits).use_collective);
  EXPECT_TRUE(mdms::advise(irr, traits).use_data_sieving);

  mdms::DatasetRecord seq;
  seq.pattern = mdms::AccessPattern::kSequentialAppend;
  EXPECT_FALSE(mdms::advise(seq, traits).use_data_sieving);
}

TEST(MdmsAdvisor, StripeRecommendationTracksRequestSize) {
  mdms::PlatformTraits traits;
  mdms::DatasetRecord r;
  r.pattern = mdms::AccessPattern::kRegularBlock;
  r.typical_request = 100 * KiB;
  auto a = mdms::advise(r, traits);
  EXPECT_GE(a.recommended_stripe, 100 * KiB);
  EXPECT_LE(a.recommended_stripe, 4 * MiB);
  r.typical_request = 0;
  EXPECT_EQ(mdms::advise(r, traits).recommended_stripe, 0u);
}

TEST(MdmsAdvisor, PatternNames) {
  EXPECT_EQ(mdms::to_string(mdms::AccessPattern::kRegularBlock),
            "regular-block");
  EXPECT_EQ(mdms::to_string(mdms::AccessPattern::kIrregular), "irregular");
}

}  // namespace
}  // namespace paramrio
