// Edge-case sweep across modules: empty payloads, degenerate shapes, prime
// processor counts, and boundary values the main suites don't reach.
#include <gtest/gtest.h>

#include <cstring>

#include "amr/refine.hpp"
#include "amr/universe.hpp"
#include "mpi/comm.hpp"
#include "pfs/local_fs.hpp"

namespace paramrio {
namespace {

mpi::RuntimeParams rparams(int n) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  return p;
}

TEST(EdgeComm, EmptyMessagesFlowThroughEverything) {
  mpi::Runtime rt(rparams(3));
  rt.run([](mpi::Comm& c) {
    if (c.rank() == 0) c.send(1, 1, {});
    if (c.rank() == 1) EXPECT_TRUE(c.recv(0, 1).empty());

    mpi::Bytes empty;
    c.bcast(empty, 0);
    EXPECT_TRUE(empty.empty());

    auto gathered = c.gatherv({}, 0);
    if (c.rank() == 0) {
      for (const auto& b : gathered) EXPECT_TRUE(b.empty());
    }
    std::vector<mpi::Bytes> outs(3);
    auto ins = c.alltoallv(outs);
    for (const auto& b : ins) EXPECT_TRUE(b.empty());
  });
}

TEST(EdgeComm, MegabyteCollectivePayloadsSurvive) {
  mpi::Runtime rt(rparams(4));
  rt.run([](mpi::Comm& c) {
    mpi::Bytes mine(MiB, static_cast<std::byte>(c.rank() + 1));
    auto all = c.allgatherv(mine);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), MiB);
      EXPECT_EQ(all[static_cast<std::size_t>(r)][MiB / 2],
                static_cast<std::byte>(r + 1));
    }
    mpi::Bytes big;
    if (c.rank() == 2) big.assign(2 * MiB, std::byte{0x5C});
    c.bcast(big, 2);
    ASSERT_EQ(big.size(), 2 * MiB);
    EXPECT_EQ(big[MiB], std::byte{0x5C});
  });
}

TEST(EdgeComm, PrimeRankCountCollectives) {
  mpi::Runtime rt(rparams(7));
  rt.run([](mpi::Comm& c) {
    EXPECT_EQ(c.allreduce_sum(std::uint64_t{1}), 7u);
    mpi::Bytes mine(static_cast<std::size_t>(c.rank()),
                    static_cast<std::byte>(c.rank()));
    auto all = c.allgatherv(mine);
    for (int r = 0; r < 7; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r));
    }
  });
}

TEST(EdgeRefine, FullyFlaggedGridIsOneBox) {
  amr::Array3f density(8, 8, 8, 100.0f);
  auto boxes =
      amr::cluster_flags(amr::flag_overdense(density, 4.0), amr::RefineParams{});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].cells(), 512u);
}

TEST(EdgeRefine, SingleFlaggedCell) {
  amr::Array3f density(8, 8, 8, 1.0f);
  density.at(3, 4, 5) = 99.0f;
  auto boxes =
      amr::cluster_flags(amr::flag_overdense(density, 4.0), amr::RefineParams{});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].cells(), 1u);
  EXPECT_EQ(boxes[0].start, (std::array<std::uint64_t, 3>{3, 4, 5}));
}

TEST(EdgeUniverse, ZeroParticlesRequested) {
  amr::Universe u(3, 2);
  amr::GridDescriptor region;
  region.dims = {4, 4, 4};
  amr::ParticleSet p = u.make_particles(0, 0, region, 0.0, Rng(1));
  EXPECT_EQ(p.size(), 0u);
}

TEST(EdgeUniverse, ParticlesStayInsideTheirRegion) {
  amr::Universe u(5, 6);
  amr::GridDescriptor region;
  region.left_edge = {0.25, 0.5, 0.0};
  region.right_edge = {0.5, 0.75, 0.125};
  region.dims = {8, 8, 4};
  amr::ParticleSet p = u.make_particles(500, 0, region, 1.0, Rng(2));
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(p.pos[0][i], 0.25);
    EXPECT_LT(p.pos[0][i], 0.5);
    EXPECT_GE(p.pos[1][i], 0.5);
    EXPECT_LT(p.pos[1][i], 0.75);
    EXPECT_GE(p.pos[2][i], 0.0);
    EXPECT_LT(p.pos[2][i], 0.125);
  }
}

TEST(EdgeFs, ManySmallFilesKeepDistinctContents) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::Options o;
  o.nprocs = 1;
  sim::Engine::run(o, [&](sim::Proc&) {
    for (int i = 0; i < 64; ++i) {
      int fd = fs.open("f" + std::to_string(i), pfs::OpenMode::kCreate);
      std::vector<std::byte> data(64, static_cast<std::byte>(i));
      fs.write_at(fd, 0, data);
      fs.close(fd);
    }
    for (int i = 0; i < 64; ++i) {
      int fd = fs.open("f" + std::to_string(i), pfs::OpenMode::kRead);
      std::vector<std::byte> out(64);
      fs.read_at(fd, 0, out);
      for (auto b : out) EXPECT_EQ(b, static_cast<std::byte>(i));
      fs.close(fd);
    }
  });
}

TEST(EdgeFs, ZeroByteWriteAndReadAreLegal) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  sim::Engine::Options o;
  o.nprocs = 1;
  sim::Engine::run(o, [&](sim::Proc&) {
    int fd = fs.open("z", pfs::OpenMode::kCreate);
    fs.write_at(fd, 0, {});
    std::vector<std::byte> none;
    fs.read_at(fd, 0, none);
    EXPECT_EQ(fs.size(fd), 0u);
    fs.close(fd);
  });
}

}  // namespace
}  // namespace paramrio
