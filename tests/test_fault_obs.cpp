// Observability of fault injection and retry: every survival action must be
// visible in the metrics registry (injector, file-system, and per-File retry
// counters), clean runs must carry zero fault noise, and seeded faulted runs
// must export byte-identical traces and registries — replayable evidence.
#include <gtest/gtest.h>

#include "harness.hpp"
#include "obs/registry.hpp"
#include "obs/trace_export.hpp"

namespace paramrio::bench {
namespace {

enzo::SimulationConfig tiny_config() {
  enzo::SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;
  c.compute_per_cell = 0.0;
  return c;
}

fault::FaultPlan transient_plan(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  fault::FaultSpec eio;
  eio.kind = fault::FaultKind::kTransientError;
  eio.probability = 0.05;
  eio.max_consecutive = 2;
  fault::FaultSpec shortw;
  shortw.kind = fault::FaultKind::kShortWrite;
  shortw.probability = 0.05;
  shortw.max_consecutive = 2;
  plan.specs.push_back(eio);
  plan.specs.push_back(shortw);
  return plan;
}

RunSpec faulted_spec(Backend b, obs::Collector* col,
                     fault::Injector* inj) {
  RunSpec spec;
  spec.machine = platform::origin2000_xfs();
  spec.config = tiny_config();
  spec.nprocs = 4;
  spec.backend = b;
  spec.collector = col;
  spec.injector = inj;
  if (b == Backend::kHdf4) {
    spec.fs_retry.max_retries = 10;  // the HDF4 path talks to the fs directly
  } else {
    spec.hints.retry.max_retries = 10;
  }
  return spec;
}

/// First registry scope with the given prefix, or "" when absent.
std::string scope_with_prefix(const obs::MetricsRegistry& reg,
                              const std::string& prefix) {
  for (const auto& [scope, _] : reg.scopes()) {
    if (scope.rfind(prefix, 0) == 0) return scope;
  }
  return {};
}

TEST(FaultObs, InjectorCountersLandInRegistry) {
  obs::Collector col;
  fault::Injector inj(transient_plan(7));
  run_enzo_io(faulted_spec(Backend::kMpiIo, &col, &inj));

  const obs::MetricsRegistry& reg = col.registry();
  ASSERT_TRUE(reg.has_scope("fault")) << reg.format();
  EXPECT_GT(reg.get("fault", "io_ops_seen"), 0u);
  EXPECT_GT(reg.get("fault", "injected_total"), 0u);
  EXPECT_EQ(reg.get("fault", "injected_total"),
            reg.get("fault", "injected_transient_error") +
                reg.get("fault", "injected_short_write"));
}

TEST(FaultObs, FileRetryCountersLandInFileScope) {
  obs::Collector col;
  fault::Injector inj(transient_plan(7));
  run_enzo_io(faulted_spec(Backend::kMpiIo, &col, &inj));

  const obs::MetricsRegistry& reg = col.registry();
  std::string scope = scope_with_prefix(reg, "file:dump.enzo|");
  ASSERT_FALSE(scope.empty()) << reg.format();
  // The hints key names the retry policy, so faulted and clean runs persist
  // into distinct scopes.
  EXPECT_NE(scope.find(",r10,"), std::string::npos) << scope;
  EXPECT_GT(reg.get(scope, "io_retries") + reg.get(scope, "short_writes") +
                reg.get(scope, "transient_io_errors"),
            0u)
      << reg.format();
}

TEST(FaultObs, FsLevelRetrySurfacesForHdf4) {
  obs::Collector col;
  fault::Injector inj(transient_plan(7));
  run_enzo_io(faulted_spec(Backend::kHdf4, &col, &inj));

  const obs::MetricsRegistry& reg = col.registry();
  std::string fs_scope = scope_with_prefix(reg, "fs:");
  ASSERT_FALSE(fs_scope.empty());
  EXPECT_GT(reg.get(fs_scope, "retries"), 0u) << reg.format();
  EXPECT_GT(reg.get("fault", "injected_total"), 0u);
}

TEST(FaultObs, CleanRunCarriesNoFaultNoise) {
  obs::Collector col;
  RunSpec spec;
  spec.machine = platform::origin2000_xfs();
  spec.config = tiny_config();
  spec.nprocs = 4;
  spec.backend = Backend::kMpiIo;
  spec.collector = &col;
  run_enzo_io(spec);

  const obs::MetricsRegistry& reg = col.registry();
  EXPECT_FALSE(reg.has_scope("fault"));
  std::string scope = scope_with_prefix(reg, "file:dump.enzo|");
  ASSERT_FALSE(scope.empty());
  // Zero-valued fault counters are not persisted at all: a clean run's
  // registry (and hence its JSON and trace exports) is byte-identical to
  // what it was before the fault layer existed.
  const auto& counters = reg.scopes().at(scope).counters;
  EXPECT_EQ(counters.count("io_retries"), 0u);
  EXPECT_EQ(counters.count("transient_io_errors"), 0u);
  EXPECT_EQ(counters.count("short_writes"), 0u);
  EXPECT_EQ(counters.count("collective_fallbacks"), 0u);
  std::string fs_scope = scope_with_prefix(reg, "fs:");
  ASSERT_FALSE(fs_scope.empty());
  EXPECT_EQ(reg.scopes().at(fs_scope).counters.count("retries"), 0u);
}

// The replay guarantee, end to end: a fixed seed gives byte-identical
// Chrome-trace and registry exports across runs — faults, backoffs, retries
// and all.
TEST(FaultObs, FaultedRunExportsAreByteIdentical) {
  obs::Collector a, b;
  fault::Injector ia(transient_plan(9)), ib(transient_plan(9));
  run_enzo_io(faulted_spec(Backend::kMpiIo, &a, &ia));
  run_enzo_io(faulted_spec(Backend::kMpiIo, &b, &ib));
  EXPECT_EQ(a.registry().to_json(2), b.registry().to_json(2));
  EXPECT_EQ(obs::chrome_trace_json(a), obs::chrome_trace_json(b));
}

// Different seeds genuinely change the run (sanity that the byte-identity
// above is not vacuous).
TEST(FaultObs, DifferentSeedsDiverge) {
  obs::Collector a, b;
  fault::Injector ia(transient_plan(9)), ib(transient_plan(10));
  run_enzo_io(faulted_spec(Backend::kMpiIo, &a, &ia));
  run_enzo_io(faulted_spec(Backend::kMpiIo, &b, &ib));
  EXPECT_NE(a.registry().to_json(2), b.registry().to_json(2));
}

}  // namespace
}  // namespace paramrio::bench
