// Parallel AMR operations: particle redistribution and the parallel sample
// sort, across communicator sizes.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "amr/ghost.hpp"
#include "amr/particles_par.hpp"
#include "amr/universe.hpp"

namespace paramrio::amr {
namespace {

mpi::RuntimeParams rparams(int n) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  return p;
}

ParticleSet scattered_particles(int rank, std::size_t n) {
  // Deterministic positions spread over the whole domain, so most particles
  // must migrate.
  ParticleSet p;
  p.resize(n);
  Rng rng(static_cast<std::uint64_t>(rank) * 77 + 5);
  for (std::size_t i = 0; i < n; ++i) {
    p.id[i] = static_cast<std::int64_t>(rank) * 1000 +
              static_cast<std::int64_t>(i);
    for (int d = 0; d < 3; ++d) {
      p.pos[static_cast<std::size_t>(d)][i] = rng.next_double();
      p.vel[static_cast<std::size_t>(d)][i] = rng.next_in(-1, 1);
    }
    p.mass[i] = rng.next_in(0.5, 2.0);
    p.attr[0][i] = 1.0f;
    p.attr[1][i] = 2.0f;
  }
  return p;
}

class ParSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParSweep, RedistributePlacesEveryParticleWithItsOwner) {
  const int p = GetParam();
  std::array<std::uint64_t, 3> dims{32, 32, 32};
  auto grid = make_proc_grid(p);
  mpi::Runtime rt(rparams(p));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(p));
  std::set<std::int64_t> all_ids;
  rt.run([&](mpi::Comm& c) {
    ParticleSet mine = scattered_particles(c.rank(), 200);
    ParticleSet got = redistribute_by_position(c, mine, dims, grid);
    counts[static_cast<std::size_t>(c.rank())] = got.size();
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Every received particle's position maps to me.
      EXPECT_EQ(rank_of_position({got.pos[0][i], got.pos[1][i], got.pos[2][i]},
                                 dims, grid),
                c.rank());
      all_ids.insert(got.id[i]);
    }
  });
  // Conservation: nothing lost, nothing duplicated.
  std::uint64_t total = std::accumulate(counts.begin(), counts.end(), 0ull);
  EXPECT_EQ(total, static_cast<std::uint64_t>(p) * 200);
  EXPECT_EQ(all_ids.size(), static_cast<std::size_t>(p) * 200);
}

TEST_P(ParSweep, ParallelSortProducesGlobalIdOrder) {
  const int p = GetParam();
  mpi::Runtime rt(rparams(p));
  std::vector<std::vector<std::int64_t>> per_rank(
      static_cast<std::size_t>(p));
  rt.run([&](mpi::Comm& c) {
    ParticleSet mine = scattered_particles(c.rank(), 150);
    ParticleSet sorted = parallel_sort_by_id(c, mine);
    auto& out = per_rank[static_cast<std::size_t>(c.rank())];
    out.assign(sorted.id.begin(), sorted.id.end());
    // Locally sorted.
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    // Payload stays attached: mass/attrs follow their ids (mass was set
    // deterministically per (rank, index); just check non-default).
    for (double m : sorted.mass) EXPECT_GT(m, 0.0);
  });
  // Rank boundaries respect the global order and all ids survive.
  std::vector<std::int64_t> all;
  for (int r = 0; r < p; ++r) {
    const auto& v = per_rank[static_cast<std::size_t>(r)];
    if (!all.empty() && !v.empty()) {
      EXPECT_LE(all.back(), v.front());
    }
    all.insert(all.end(), v.begin(), v.end());
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(p) * 150);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  std::set<std::int64_t> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size());
}

INSTANTIATE_TEST_SUITE_P(Procs, ParSweep, ::testing::Values(1, 2, 3, 4, 8));

TEST(ParallelSort, SkewedIdsStillBalanceRoughly) {
  // All ids clustered in a narrow range: splitters must still spread work.
  const int p = 4;
  mpi::Runtime rt(rparams(p));
  std::vector<std::size_t> counts(p);
  rt.run([&](mpi::Comm& c) {
    ParticleSet mine;
    mine.resize(100);
    for (std::size_t i = 0; i < 100; ++i) {
      mine.id[i] = static_cast<std::int64_t>(c.rank()) * 100 +
                   static_cast<std::int64_t>(i);
      mine.pos[0][i] = mine.pos[1][i] = mine.pos[2][i] = 0.5;
    }
    ParticleSet sorted = parallel_sort_by_id(c, mine);
    counts[static_cast<std::size_t>(c.rank())] = sorted.size();
  });
  // No rank should hold everything.
  for (int r = 0; r < p; ++r) {
    EXPECT_LT(counts[static_cast<std::size_t>(r)], 400u);
    EXPECT_GT(counts[static_cast<std::size_t>(r)], 0u);
  }
}

TEST(Redistribute, EmptySetsAreFine) {
  mpi::Runtime rt(rparams(3));
  rt.run([&](mpi::Comm& c) {
    ParticleSet empty;
    ParticleSet got = redistribute_by_position(c, empty, {8, 8, 8},
                                               make_proc_grid(3));
    EXPECT_EQ(got.size(), 0u);
    ParticleSet sorted = parallel_sort_by_id(c, empty);
    EXPECT_EQ(sorted.size(), 0u);
  });
}


class GhostSweep : public ::testing::TestWithParam<int> {};

TEST_P(GhostSweep, PeriodicExchangeMatchesGlobalField) {
  const int p = GetParam();
  std::array<std::uint64_t, 3> dims{8, 8, 8};
  auto grid = make_proc_grid(p);
  // Global analytic field: f(z,y,x) = linear index.
  auto global = [&](std::uint64_t z, std::uint64_t y, std::uint64_t x) {
    z = (z + dims[0]) % dims[0];
    y = (y + dims[1]) % dims[1];
    x = (x + dims[2]) % dims[2];
    return static_cast<float>((z * dims[1] + y) * dims[2] + x);
  };
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    BlockExtent e = block_of(dims, grid, c.rank());
    GhostBlock gb(e);
    for (std::uint64_t z = 0; z < e.count[0]; ++z) {
      for (std::uint64_t y = 0; y < e.count[1]; ++y) {
        for (std::uint64_t x = 0; x < e.count[2]; ++x) {
          gb.interior(z, y, x) =
              global(e.start[0] + z, e.start[1] + y, e.start[2] + x);
        }
      }
    }
    exchange_ghost_zones(c, gb, grid);
    // Every face-ghost cell must equal the periodic global value.
    auto& a = gb.padded();
    for (std::uint64_t y = 0; y < e.count[1]; ++y) {
      for (std::uint64_t x = 0; x < e.count[2]; ++x) {
        EXPECT_FLOAT_EQ(a.at(0, y + 1, x + 1),
                        global(static_cast<std::uint64_t>(
                                   e.start[0] + dims[0] - 1),
                               e.start[1] + y, e.start[2] + x));
        EXPECT_FLOAT_EQ(a.at(e.count[0] + 1, y + 1, x + 1),
                        global(e.start[0] + e.count[0], e.start[1] + y,
                               e.start[2] + x));
      }
    }
    for (std::uint64_t z = 0; z < e.count[0]; ++z) {
      for (std::uint64_t x = 0; x < e.count[2]; ++x) {
        EXPECT_FLOAT_EQ(a.at(z + 1, 0, x + 1),
                        global(e.start[0] + z,
                               static_cast<std::uint64_t>(e.start[1] +
                                                          dims[1] - 1),
                               e.start[2] + x));
        EXPECT_FLOAT_EQ(a.at(z + 1, e.count[1] + 1, x + 1),
                        global(e.start[0] + z, e.start[1] + e.count[1],
                               e.start[2] + x));
      }
    }
    for (std::uint64_t z = 0; z < e.count[0]; ++z) {
      for (std::uint64_t y = 0; y < e.count[1]; ++y) {
        EXPECT_FLOAT_EQ(a.at(z + 1, y + 1, 0),
                        global(e.start[0] + z, e.start[1] + y,
                               static_cast<std::uint64_t>(e.start[2] +
                                                          dims[2] - 1)));
        EXPECT_FLOAT_EQ(a.at(z + 1, y + 1, e.count[2] + 1),
                        global(e.start[0] + z, e.start[1] + y,
                               e.start[2] + e.count[2]));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, GhostSweep, ::testing::Values(1, 2, 4, 8));

TEST(Ghost, FaceNeighborsArePeriodicInverse) {
  auto grid = make_proc_grid(12);
  for (int r = 0; r < 12; ++r) {
    for (int axis = 0; axis < 3; ++axis) {
      int up = face_neighbor(grid, r, axis, +1);
      EXPECT_EQ(face_neighbor(grid, up, axis, -1), r);
    }
  }
}

TEST(Ghost, LoadStoreInteriorRoundTrip) {
  BlockExtent e;
  e.count = {3, 4, 5};
  Array3f src(3, 4, 5);
  for (std::uint64_t i = 0; i < src.size(); ++i) {
    src.data()[i] = static_cast<float>(i) * 0.5f;
  }
  GhostBlock gb(e);
  gb.load_interior(src);
  Array3f dst(3, 4, 5);
  gb.store_interior(dst);
  EXPECT_EQ(src, dst);
  // Ghost layers untouched (zero).
  EXPECT_FLOAT_EQ(gb.padded().at(0, 0, 0), 0.0f);
}

}  // namespace
}  // namespace paramrio::amr
