// Application-level tests: the ENZO-style simulation driver and all three
// I/O backends, including full dump -> restart round-trips verified
// bit-for-bit and cross-backend consistency.
#include <gtest/gtest.h>

#include <memory>

#include "amr/particles_par.hpp"
#include "check/io_checker.hpp"
#include "enzo/backends.hpp"
#include "enzo/dump_common.hpp"
#include "enzo/simulation.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "pfs/local_fs.hpp"

namespace paramrio::enzo {
namespace {

mpi::RuntimeParams rparams(int n) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  return p;
}

SimulationConfig small_config() {
  SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;  // 1024 particles
  c.n_clumps = 4;
  c.refine.threshold = 3.0;
  c.refine.min_box = 2;
  c.compute_per_cell = 0.0;  // timing-free tests
  return c;
}

void sort_particles(amr::ParticleSet& p) { amr::local_sort_by_id(p); }

void expect_states_equal(const SimulationState& a, const SimulationState& b) {
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.cycle, b.cycle);
  ASSERT_EQ(a.my_fields.size(), b.my_fields.size());
  for (std::size_t f = 0; f < a.my_fields.size(); ++f) {
    EXPECT_EQ(a.my_fields[f], b.my_fields[f]) << "field " << f;
  }
  amr::ParticleSet pa = a.my_particles, pb = b.my_particles;
  sort_particles(pa);
  sort_particles(pb);
  EXPECT_EQ(pa, pb);
}

TEST(EnzoSimulation, InitializeProducesConsistentState) {
  const int p = 4;
  mpi::Runtime rt(rparams(p));
  std::vector<std::vector<std::byte>> hier(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> particle_counts(static_cast<std::size_t>(p));
  rt.run([&](mpi::Comm& c) {
    EnzoSimulation sim(c, small_config());
    sim.initialize_from_universe();
    const SimulationState& s = sim.state();
    hier[static_cast<std::size_t>(c.rank())] = s.hierarchy.serialize();
    particle_counts[static_cast<std::size_t>(c.rank())] =
        s.my_particles.size();
    // Fields allocated and filled.
    ASSERT_EQ(s.my_fields.size(),
              static_cast<std::size_t>(amr::kNumBaryonFields));
    EXPECT_EQ(s.my_fields[0].size(), s.my_block.cells());
    // Every particle lies inside my block.
    for (std::size_t i = 0; i < s.my_particles.size(); ++i) {
      EXPECT_EQ(amr::rank_of_position({s.my_particles.pos[0][i],
                                       s.my_particles.pos[1][i],
                                       s.my_particles.pos[2][i]},
                                      s.config.root_dims, s.proc_grid),
                c.rank());
    }
    // Subgrids exist (the clumps must trigger refinement) and are owned
    // consistently with the hierarchy.
    std::uint64_t owned = 0;
    for (const auto& g : s.hierarchy.grids()) {
      if (g.level > 0 && g.owner == c.rank()) ++owned;
    }
    EXPECT_EQ(owned, s.my_subgrids.size());
    EXPECT_GT(s.hierarchy.grid_count(), 1u);
  });
  // Replicated hierarchy identical everywhere.
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(hier[static_cast<std::size_t>(r)], hier[0]);
  }
  // All particles accounted for.
  std::uint64_t total = 0;
  for (auto n : particle_counts) total += n;
  EXPECT_EQ(total, small_config().total_particles());
}

TEST(EnzoSimulation, EvolveKeepsInvariants) {
  const int p = 4;
  mpi::Runtime rt(rparams(p));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(p));
  rt.run([&](mpi::Comm& c) {
    EnzoSimulation sim(c, small_config());
    sim.initialize_from_universe();
    for (int cycle = 0; cycle < 3; ++cycle) sim.evolve_cycle();
    const SimulationState& s = sim.state();
    EXPECT_EQ(s.cycle, 3u);
    EXPECT_DOUBLE_EQ(s.time, 3 * small_config().dt);
    counts[static_cast<std::size_t>(c.rank())] = s.my_particles.size();
    for (std::size_t i = 0; i < s.my_particles.size(); ++i) {
      EXPECT_EQ(amr::rank_of_position({s.my_particles.pos[0][i],
                                       s.my_particles.pos[1][i],
                                       s.my_particles.pos[2][i]},
                                      s.config.root_dims, s.proc_grid),
                c.rank());
    }
  });
  std::uint64_t total = 0;
  for (auto n : counts) total += n;
  EXPECT_EQ(total, small_config().total_particles());
}

// ---------------------------------------------------------------------------
// Backend round-trips
// ---------------------------------------------------------------------------

enum class Kind { kHdf4, kMpiIo, kHdf5, kPnetcdf };

std::unique_ptr<IoBackend> make_backend(Kind k, pfs::FileSystem& fs) {
  switch (k) {
    case Kind::kHdf4:
      return std::make_unique<Hdf4SerialBackend>(fs);
    case Kind::kMpiIo:
      return std::make_unique<MpiIoBackend>(fs);
    case Kind::kHdf5:
      return std::make_unique<Hdf5ParallelBackend>(fs);
    case Kind::kPnetcdf:
      return std::make_unique<PnetcdfBackend>(fs);
  }
  throw LogicError("bad backend kind");
}

class BackendSweep
    : public ::testing::TestWithParam<std::tuple<Kind, int>> {};

TEST_P(BackendSweep, DumpRestartRoundTripIsExact) {
  auto [kind, p] = GetParam();
  pfs::LocalFs fs(pfs::LocalFsParams{});
  check::CheckOptions copts;
  copts.padding_alignment = 4096;  // pnetcdf aligns its data region
  check::IoChecker checker(copts);
  fs.attach_observer(&checker);
  mpi::Runtime rt(rparams(p));
  std::vector<SimulationState> originals(static_cast<std::size_t>(p));

  rt.run([&](mpi::Comm& c) {
    auto backend = make_backend(kind, fs);
    EnzoSimulation sim(c, small_config());
    sim.initialize_from_universe();
    sim.evolve_cycle();
    if (c.rank() == 0) checker.begin_phase("dump");
    c.barrier();
    backend->write_dump(c, sim.state(), "dump");
    originals[static_cast<std::size_t>(c.rank())] = sim.state();

    // Fresh state, restart from the dump.
    if (c.rank() == 0) checker.begin_phase("restart");
    c.barrier();
    EnzoSimulation sim2(c, small_config());
    backend->read_restart(c, sim2.state(), "dump");
    const SimulationState& orig =
        originals[static_cast<std::size_t>(c.rank())];
    expect_states_equal(orig, sim2.state());
    // Hierarchy geometry identical (owners may be reassigned round-robin).
    ASSERT_EQ(sim2.state().hierarchy.grid_count(),
              orig.hierarchy.grid_count());
    for (std::size_t i = 0; i < orig.hierarchy.grids().size(); ++i) {
      const auto& ga = orig.hierarchy.grids()[i];
      const auto& gb = sim2.state().hierarchy.grids()[i];
      EXPECT_EQ(ga.id, gb.id);
      EXPECT_EQ(ga.dims, gb.dims);
      EXPECT_EQ(ga.left_edge, gb.left_edge);
    }
    // Restart subgrid data matches the original owner's data: verify
    // against the analytic universe (same resample, same float values).
    for (const amr::Grid& g : sim2.state().my_subgrids) {
      amr::Grid expect;
      expect.desc = g.desc;
      sim.universe().fill_fields(expect, sim2.state().time);
      for (int f = 0; f < amr::kNumBaryonFields; ++f) {
        EXPECT_EQ(g.fields[static_cast<std::size_t>(f)],
                  expect.fields[static_cast<std::size_t>(f)])
            << "subgrid " << g.desc.id << " field " << f;
      }
    }
  });
  // The whole dump+restart must audit clean: no cross-rank write conflicts,
  // holes, reads of never-written bytes, or descriptor-lifecycle bugs.
  check::CheckReport audit = checker.analyze(&fs.store());
  EXPECT_TRUE(audit.clean()) << audit.format();
  EXPECT_EQ(audit.count(check::Kind::kWriteConflict), 0u);
  EXPECT_EQ(audit.count(check::Kind::kHole), 0u);
  EXPECT_EQ(audit.count(check::Kind::kReadBeforeWrite), 0u);
  EXPECT_EQ(audit.count(check::Kind::kFdLeak), 0u);
}

TEST_P(BackendSweep, InitialReadPartitionsEveryGrid) {
  auto [kind, p] = GetParam();
  pfs::LocalFs fs(pfs::LocalFsParams{});
  check::CheckOptions copts;
  copts.padding_alignment = 4096;  // pnetcdf aligns its data region
  check::IoChecker checker(copts);
  fs.attach_observer(&checker);
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    auto backend = make_backend(kind, fs);
    EnzoSimulation sim(c, small_config());
    sim.initialize_from_universe();
    std::size_t n_subgrids = sim.state().hierarchy.grid_count() - 1;
    if (c.rank() == 0) checker.begin_phase("dump");
    c.barrier();
    backend->write_dump(c, sim.state(), "init");

    if (c.rank() == 0) checker.begin_phase("initial-read");
    c.barrier();
    EnzoSimulation fresh(c, small_config());
    backend->read_initial(c, fresh.state(), "init");
    const SimulationState& s = fresh.state();
    // Top-grid identical to the generator's block state.
    for (std::size_t f = 0; f < s.my_fields.size(); ++f) {
      EXPECT_EQ(s.my_fields[f], sim.state().my_fields[f]);
    }
    amr::ParticleSet pa = s.my_particles, pb = sim.state().my_particles;
    amr::local_sort_by_id(pa);
    amr::local_sort_by_id(pb);
    EXPECT_EQ(pa, pb);
    // Every stored subgrid became P pieces; I hold one piece per subgrid.
    EXPECT_EQ(s.my_subgrids.size(), n_subgrids);
    EXPECT_EQ(s.hierarchy.grid_count(),
              1 + n_subgrids * static_cast<std::size_t>(p));
    // Piece data matches the analytic fields on the piece geometry.
    for (const amr::Grid& piece : s.my_subgrids) {
      amr::Grid expect;
      expect.desc = piece.desc;
      sim.universe().fill_fields(expect, s.time);
      EXPECT_EQ(piece.fields[0], expect.fields[0]);
    }
  });
  check::CheckReport audit = checker.analyze(&fs.store());
  EXPECT_TRUE(audit.clean()) << audit.format();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BackendSweep,
    ::testing::Combine(::testing::Values(Kind::kHdf4, Kind::kMpiIo,
                                         Kind::kHdf5, Kind::kPnetcdf),
                       ::testing::Values(1, 2, 4, 8)));

TEST(BackendMpiIo, DumpHitsViewFlattenCache) {
  // The eight baryon-field writes install the same subarray filetype at a
  // different displacement each time — the flattening must be computed once
  // and reused, visible as cache hits in the persisted file stats.
  const int p = 4;
  obs::Collector col;
  obs::attach(&col);
  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    MpiIoBackend mb(fs);
    EnzoSimulation sim(c, small_config());
    sim.initialize_from_universe();
    mb.write_dump(c, sim.state(), "dump");
  });
  obs::detach();
  const obs::MetricsRegistry& reg = col.registry();
  std::string scope;
  for (const auto& [s, _] : reg.scopes()) {
    if (s.rfind("file:dump.enzo|", 0) == 0) scope = s;
  }
  ASSERT_FALSE(scope.empty()) << reg.format();
  EXPECT_GT(reg.get(scope, "view_flatten_cache_hits"), 0u) << reg.format();
}

TEST(BackendCross, MpiIoAndHdf5ProduceSameRestartState) {
  const int p = 4;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    MpiIoBackend mb(fs);
    Hdf5ParallelBackend hb(fs);
    EnzoSimulation sim(c, small_config());
    sim.initialize_from_universe();
    mb.write_dump(c, sim.state(), "m");
    hb.write_dump(c, sim.state(), "h");

    EnzoSimulation s1(c, small_config());
    EnzoSimulation s2(c, small_config());
    mb.read_restart(c, s1.state(), "m");
    hb.read_restart(c, s2.state(), "h");
    expect_states_equal(s1.state(), s2.state());
  });
}

TEST(BackendCross, Hdf4MatchesMpiIo) {
  const int p = 4;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  mpi::Runtime rt(rparams(p));
  rt.run([&](mpi::Comm& c) {
    Hdf4SerialBackend h4(fs);
    MpiIoBackend mb(fs);
    EnzoSimulation sim(c, small_config());
    sim.initialize_from_universe();
    h4.write_dump(c, sim.state(), "a");
    mb.write_dump(c, sim.state(), "b");

    EnzoSimulation s1(c, small_config());
    EnzoSimulation s2(c, small_config());
    h4.read_restart(c, s1.state(), "a");
    mb.read_restart(c, s2.state(), "b");
    expect_states_equal(s1.state(), s2.state());
  });
}

TEST(DumpMeta, SerializeRoundTrip) {
  DumpMeta m;
  m.time = 7.25;
  m.cycle = 42;
  m.n_particles = 12345;
  m.hierarchy.set_root({32, 32, 32});
  DumpMeta back = DumpMeta::deserialize(m.serialize());
  EXPECT_DOUBLE_EQ(back.time, 7.25);
  EXPECT_EQ(back.cycle, 42u);
  EXPECT_EQ(back.n_particles, 12345u);
  EXPECT_EQ(back.hierarchy, m.hierarchy);
}

TEST(ParticleArrays, ToFromBytesAllArrays) {
  amr::ParticleSet p;
  p.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    p.id[i] = static_cast<std::int64_t>(i * 7);
    for (int d = 0; d < 3; ++d) {
      p.pos[static_cast<std::size_t>(d)][i] = 0.1 * (i + d);
      p.vel[static_cast<std::size_t>(d)][i] = -0.3 * (i + d);
    }
    p.mass[i] = 1.0 + i;
    p.attr[0][i] = static_cast<float>(2 * i);
    p.attr[1][i] = static_cast<float>(3 * i);
  }
  amr::ParticleSet q;
  q.resize(4);
  for (std::size_t a = 0; a < kNumParticleArrays; ++a) {
    std::vector<std::byte> buf(4 * kParticleArrays[a].elem_size);
    particle_array_to_bytes(p, a, 0, 4, buf.data());
    particle_array_from_bytes(q, a, 4, buf.data());
  }
  EXPECT_EQ(p, q);
}

TEST(Config, ProblemSizes) {
  EXPECT_EQ(SimulationConfig::for_size(ProblemSize::kAmr64).root_dims[0], 64u);
  EXPECT_EQ(SimulationConfig::for_size(ProblemSize::kAmr128).root_dims[1],
            128u);
  EXPECT_EQ(SimulationConfig::for_size(ProblemSize::kAmr256).root_dims[2],
            256u);
  EXPECT_EQ(to_string(ProblemSize::kAmr64), "AMR64");
  auto c = SimulationConfig::for_size(ProblemSize::kAmr64);
  EXPECT_EQ(c.root_cells(), 64ull * 64 * 64);
  EXPECT_EQ(c.total_particles(),
            static_cast<std::uint64_t>(c.particles_per_cell * 64 * 64 * 64));
}

}  // namespace
}  // namespace paramrio::enzo
