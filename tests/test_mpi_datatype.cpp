// Unit tests for MPI-style derived datatypes and view-stream mapping.
#include <gtest/gtest.h>

#include "mpi/datatype.hpp"

namespace paramrio::mpi {
namespace {

TEST(Datatype, Contiguous) {
  auto t = Datatype::contiguous(64);
  EXPECT_EQ(t.size(), 64u);
  EXPECT_EQ(t.extent(), 64u);
  EXPECT_TRUE(t.is_contiguous());
  ASSERT_EQ(t.segments().size(), 1u);
  EXPECT_EQ(t.segments()[0], (Segment{0, 64}));
}

TEST(Datatype, Vector) {
  auto t = Datatype::vector(/*count=*/3, /*blocklen=*/4, /*stride=*/10);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.extent(), 24u);
  EXPECT_FALSE(t.is_contiguous());
  ASSERT_EQ(t.segments().size(), 3u);
  EXPECT_EQ(t.segments()[1], (Segment{10, 4}));
}

TEST(Datatype, VectorWithStrideEqualBlocklenCoalesces) {
  auto t = Datatype::vector(4, 8, 8);
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_EQ(t.size(), 32u);
}

TEST(Datatype, IndexedSortsAndCoalesces) {
  auto t = Datatype::indexed({{20, 5}, {0, 10}, {10, 10}});
  // [0,10) and [10,20) and [20,25) coalesce into one run.
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_EQ(t.size(), 25u);
}

TEST(Datatype, IndexedOverlapThrows) {
  EXPECT_THROW(Datatype::indexed({{0, 10}, {5, 10}}), LogicError);
}

TEST(Datatype, IndexedExtentOverride) {
  auto t = Datatype::indexed({{0, 4}}, /*extent_override=*/16);
  EXPECT_EQ(t.extent(), 16u);
  EXPECT_FALSE(t.is_contiguous());
}

TEST(Datatype, EmptyTypeRejected) {
  EXPECT_THROW(Datatype::indexed({}), LogicError);
  EXPECT_THROW(Datatype::indexed({{0, 0}}), LogicError);
}

TEST(Datatype, Subarray2D) {
  // 4x6 array of 2-byte elements; take rows 1..2, cols 2..4.
  auto t = Datatype::subarray({4, 6}, {2, 3}, {1, 2}, 2);
  EXPECT_EQ(t.size(), 2u * 3 * 2);
  EXPECT_EQ(t.extent(), 4u * 6 * 2);
  ASSERT_EQ(t.segments().size(), 2u);
  // Row 1 starts at element (1,2) = index 8 -> byte 16, length 6 bytes.
  EXPECT_EQ(t.segments()[0], (Segment{16, 6}));
  // Row 2 at element (2,2) = index 14 -> byte 28.
  EXPECT_EQ(t.segments()[1], (Segment{28, 6}));
}

TEST(Datatype, Subarray3DBlockRowsMatchManualEnumeration) {
  // 4x4x4 array of 4-byte elements, block [1..2]x[0..1]x[2..3].
  auto t = Datatype::subarray({4, 4, 4}, {2, 2, 2}, {1, 0, 2}, 4);
  EXPECT_EQ(t.size(), 8u * 4);
  ASSERT_EQ(t.segments().size(), 4u);
  auto at = [](std::uint64_t z, std::uint64_t y, std::uint64_t x) {
    return ((z * 4 + y) * 4 + x) * 4;
  };
  EXPECT_EQ(t.segments()[0].offset, at(1, 0, 2));
  EXPECT_EQ(t.segments()[1].offset, at(1, 1, 2));
  EXPECT_EQ(t.segments()[2].offset, at(2, 0, 2));
  EXPECT_EQ(t.segments()[3].offset, at(2, 1, 2));
  for (const auto& s : t.segments()) EXPECT_EQ(s.length, 8u);
}

TEST(Datatype, SubarrayFullArrayIsContiguous) {
  auto t = Datatype::subarray({8, 8}, {8, 8}, {0, 0}, 4);
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_EQ(t.size(), 256u);
}

TEST(Datatype, SubarrayWholeRowsCoalesce) {
  // Taking complete rows of the fastest dims collapses into one segment per
  // contiguous slab.
  auto t = Datatype::subarray({4, 4, 4}, {2, 4, 4}, {1, 0, 0}, 1);
  EXPECT_EQ(t.segments().size(), 1u);
  EXPECT_EQ(t.segments()[0], (Segment{16, 32}));
}

TEST(Datatype, SubarrayBoundsChecked) {
  EXPECT_THROW(Datatype::subarray({4, 4}, {2, 3}, {3, 0}, 1), LogicError);
  EXPECT_THROW(Datatype::subarray({4}, {2, 2}, {0}, 1), LogicError);
  EXPECT_THROW(Datatype::subarray({4}, {0}, {0}, 1), LogicError);
}

TEST(Datatype, MapStreamWithinOneTile) {
  auto t = Datatype::vector(3, 4, 10);  // visible [0,4)[10,14)[20,24)
  std::vector<Segment> out;
  t.map_stream(2, 6, out);  // stream bytes 2..8: file 2..4 then 10..14
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Segment{2, 2}));
  EXPECT_EQ(out[1], (Segment{10, 4}));
}

TEST(Datatype, MapStreamAcrossTiles) {
  auto t = Datatype::vector(2, 4, 8);  // size 8, extent 12
  std::vector<Segment> out;
  t.map_stream(6, 8, out);
  // Stream [6,14): tile0 seg1 [8+2,12)=file[10,12), tile1 seg0 file[12,16),
  // tile1 seg1 file[20,22).  [10,12) and [12,16) coalesce.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Segment{10, 6}));
  EXPECT_EQ(out[1], (Segment{20, 2}));
}

TEST(Datatype, MapStreamContiguousIdentity) {
  auto t = Datatype::contiguous(16);
  std::vector<Segment> out;
  t.map_stream(100, 32, out);
  ASSERT_EQ(out.size(), 1u);  // tiles coalesce seamlessly
  EXPECT_EQ(out[0], (Segment{100, 32}));
}

class SubarraySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SubarraySweep, VisibleBytesMatchBlockVolume) {
  auto [n, b, elem] = GetParam();
  auto nn = static_cast<std::uint64_t>(n);
  auto bb = static_cast<std::uint64_t>(b);
  std::uint64_t xs = bb < nn ? 1 : 0;  // keep the block in bounds
  auto t = Datatype::subarray({nn, nn, nn}, {bb, bb, bb}, {nn - bb, 0, xs},
                              static_cast<std::uint64_t>(elem));
  EXPECT_EQ(t.size(), bb * bb * bb * static_cast<std::uint64_t>(elem));
  EXPECT_EQ(t.extent(), nn * nn * nn * static_cast<std::uint64_t>(elem));
  // Stream mapping of the whole block must reproduce size() bytes.
  std::vector<Segment> out;
  t.map_stream(0, t.size(), out);
  std::uint64_t total = 0;
  for (const auto& s : out) total += s.length;
  EXPECT_EQ(total, t.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SubarraySweep,
    ::testing::Values(std::make_tuple(4, 2, 4), std::make_tuple(8, 3, 4),
                      std::make_tuple(16, 5, 8), std::make_tuple(8, 8, 4),
                      std::make_tuple(6, 1, 2)));

}  // namespace
}  // namespace paramrio::mpi
