// Unit tests for the cross-layer profiler: span lifecycle and nesting,
// unbalanced-instrumentation detection, category rollups against the
// engine's own ProcStats, the metrics registry, and the determinism of the
// Chrome-trace and report exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "sim/engine.hpp"

namespace paramrio::obs {
namespace {

sim::Engine::Options opts(int n) {
  sim::Engine::Options o;
  o.nprocs = n;
  return o;
}

/// attach/detach guard so a failing test cannot leak a dangling collector.
struct Attached {
  explicit Attached(Collector& c) { attach(&c); }
  ~Attached() { detach(); }
};

TEST(Registry, CountersAndValues) {
  MetricsRegistry reg;
  reg.add("s", "n", 2);
  reg.add("s", "n", 3);
  reg.set("s", "m", 7);
  reg.observe_max("s", "peak", 5);
  reg.observe_max("s", "peak", 3);
  reg.add_value("s", "t", 1.5);
  reg.add_value("s", "t", 0.25);
  EXPECT_EQ(reg.get("s", "n"), 5u);
  EXPECT_EQ(reg.get("s", "m"), 7u);
  EXPECT_EQ(reg.get("s", "peak"), 5u);
  EXPECT_DOUBLE_EQ(reg.get_value("s", "t"), 1.75);
  EXPECT_EQ(reg.get("s", "absent"), 0u);
  EXPECT_EQ(reg.get("absent", "n"), 0u);
  EXPECT_TRUE(reg.has_scope("s"));
  EXPECT_FALSE(reg.has_scope("absent"));
}

TEST(Registry, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, 0.1, 1.0 / 3.0, 1.2345678901234567e-9,
                   9007199254740993.0, -2.5}) {
    EXPECT_DOUBLE_EQ(std::strtod(format_double(v).c_str(), nullptr), v);
  }
  EXPECT_EQ(format_double(std::nan("")), "0");  // JSON has no NaN
}

TEST(Registry, JsonEscapes) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Span, NoOpWithoutCollectorOrSimulation) {
  // Outside a simulation even with a collector attached.
  Collector c;
  Attached guard(c);
  {
    OBS_SPAN("ignored", TimeCategory::kCpu);
    span_counter("ignored", 1);
    counter_sample("ignored", 1.0);
  }
  EXPECT_TRUE(c.spans().empty());
  EXPECT_TRUE(c.samples().empty());

  // Inside a simulation with no collector attached.
  detach();
  sim::Engine::run(opts(1), [](sim::Proc& p) {
    OBS_SPAN("also_ignored", TimeCategory::kCpu);
    p.advance(1.0);
  });
  EXPECT_TRUE(c.spans().empty());
  attach(&c);  // let the guard detach cleanly
}

TEST(Span, RecordsNestingDepthAndCategoryDeltas) {
  Collector c;
  Attached guard(c);
  sim::Engine::run(opts(2), [](sim::Proc& p) {
    OBS_SPAN("outer", TimeCategory::kIo);
    p.advance(0.5, sim::TimeCategory::kCpu);
    {
      OBS_SPAN("inner", TimeCategory::kComm);
      span_counter("bytes", 100);
      span_counter("bytes", 28);
      p.advance(0.25, sim::TimeCategory::kComm);
    }
    p.advance(0.125, sim::TimeCategory::kIo);
  });
  ASSERT_TRUE(c.balanced());
  ASSERT_EQ(c.spans().size(), 4u);  // 2 ranks x 2 spans
  ASSERT_EQ(c.ranks(), 2);

  for (const SpanRecord& s : c.spans()) {
    if (s.name == "inner") {
      EXPECT_EQ(s.depth, 1);
      EXPECT_EQ(s.category, TimeCategory::kComm);
      EXPECT_DOUBLE_EQ(s.comm_dt, 0.25);
      EXPECT_DOUBLE_EQ(s.cpu_dt, 0.0);
      // Same-name counters merge on the open span.
      ASSERT_EQ(s.counters.size(), 1u);
      EXPECT_EQ(s.counters[0].first, "bytes");
      EXPECT_EQ(s.counters[0].second, 128u);
    } else {
      ASSERT_EQ(s.name, "outer");
      EXPECT_EQ(s.depth, 0);
      // Inclusive deltas: the inner span's comm time is covered too.
      EXPECT_DOUBLE_EQ(s.cpu_dt, 0.5);
      EXPECT_DOUBLE_EQ(s.comm_dt, 0.25);
      EXPECT_DOUBLE_EQ(s.io_dt, 0.125);
      EXPECT_DOUBLE_EQ(s.duration(), 0.875);
    }
  }
}

TEST(Span, RollupMatchesProcStats) {
  Collector c;
  Attached guard(c);
  auto res = sim::Engine::run(opts(3), [](sim::Proc& p) {
    OBS_SPAN("all", TimeCategory::kCpu);
    p.advance(0.1 * (p.rank() + 1), sim::TimeCategory::kCpu);
    p.advance(0.25, sim::TimeCategory::kComm);
    p.advance(0.0625, sim::TimeCategory::kIo);
  });
  ASSERT_TRUE(c.balanced());
  for (const SpanRecord& s : c.spans()) {
    const sim::ProcStats& st = res.stats[static_cast<std::size_t>(s.rank)];
    EXPECT_DOUBLE_EQ(s.cpu_dt, st.cpu_time);
    EXPECT_DOUBLE_EQ(s.comm_dt, st.comm_time);
    EXPECT_DOUBLE_EQ(s.io_dt, st.io_time);
    EXPECT_DOUBLE_EQ(s.duration(), st.total());
  }
}

TEST(Span, UnbalancedInstrumentationIsDetected) {
  Collector c;
  Attached guard(c);
  sim::Engine::run(opts(1), [&](sim::Proc& p) {
    c.begin_span(p, "left_open", TimeCategory::kCpu);
    p.advance(1.0);
  });
  EXPECT_FALSE(c.balanced());
  ASSERT_EQ(c.open_spans(0).size(), 1u);
  EXPECT_EQ(c.open_spans(0)[0], "left_open");

  // Ending with nothing open throws (and the engine rethrows it).
  Collector c2;
  attach(&c2);
  EXPECT_THROW(
      sim::Engine::run(opts(1), [&](sim::Proc& p) { c2.end_span(p); }),
      LogicError);
  attach(&c);  // restore for the guard
}

TEST(Span, CounterSamplesAreRecorded) {
  Collector c;
  Attached guard(c);
  sim::Engine::run(opts(1), [](sim::Proc& p) {
    p.advance(0.5);
    counter_sample("window_fill", 4096.0);
  });
  ASSERT_EQ(c.samples().size(), 1u);
  EXPECT_EQ(c.samples()[0].name, "window_fill");
  EXPECT_DOUBLE_EQ(c.samples()[0].value, 4096.0);
  EXPECT_DOUBLE_EQ(c.samples()[0].time, 0.5);
}

void run_workload(Collector& c) {
  attach(&c);
  sim::Engine::run(opts(2), [](sim::Proc& p) {
    OBS_SPAN("phase_a", TimeCategory::kCpu);
    p.advance(1.0 / 3.0);
    counter_sample("fill", 1234.5);
    {
      OBS_SPAN("phase_b", TimeCategory::kIo);
      span_counter("bytes", 4096);
      p.advance(0.1, sim::TimeCategory::kIo);
    }
  });
  detach();
}

TEST(Exporters, ChromeTraceIsDeterministicAndWellFormed) {
  Collector a, b;
  run_workload(a);
  run_workload(b);
  std::string ja = chrome_trace_json(a);
  std::string jb = chrome_trace_json(b);
  EXPECT_EQ(ja, jb);  // byte-identical across identical runs

  // Structural spot-checks (full JSON parsing is CI's job).
  EXPECT_NE(ja.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(ja.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(ja.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(ja.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(ja.find("phase_b"), std::string::npos);
  EXPECT_EQ(ja.find("\n\n"), std::string::npos);
}

TEST(Exporters, RegistryJsonIsDeterministic) {
  Collector a, b;
  run_workload(a);
  run_workload(b);
  a.registry().add("net", "bytes", 42);
  b.registry().add("net", "bytes", 42);
  EXPECT_EQ(a.registry().to_json(2), b.registry().to_json(2));
  EXPECT_NE(a.registry().to_json(2).find("\"net\""), std::string::npos);
}

TEST(Exporters, ReportAggregatesPhases) {
  Collector c;
  run_workload(c);
  Report r = build_report(c);
  ASSERT_EQ(r.ranks.size(), 2u);
  const PhaseStats* a = r.phase("phase_a");
  const PhaseStats* b = r.phase("phase_b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->calls, 2u);
  EXPECT_NEAR(a->total_time, 2.0 * (1.0 / 3.0 + 0.1), 1e-12);
  EXPECT_NEAR(b->io_time, 0.2, 1e-12);
  EXPECT_EQ(r.counter_sum("phase_b", "bytes"), 8192u);
  // Per-rank decomposition covers each rank's whole accounted time.
  for (const RankBreakdown& rb : r.ranks) {
    EXPECT_NEAR(rb.total_time, 1.0 / 3.0 + 0.1, 1e-12);
  }
  std::string text = report_text(r);
  EXPECT_NE(text.find("phase_a"), std::string::npos);
  EXPECT_NE(text.find("io-frac"), std::string::npos);
}

}  // namespace
}  // namespace paramrio::obs
