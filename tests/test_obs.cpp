// Unit tests for the cross-layer profiler: span lifecycle and nesting,
// unbalanced-instrumentation detection, category rollups against the
// engine's own ProcStats, the metrics registry, and the determinism of the
// Chrome-trace and report exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "mpi/io/deferred_scope.hpp"
#include "obs/critical_path.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "sim/engine.hpp"

namespace paramrio::obs {
namespace {

sim::Engine::Options opts(int n) {
  sim::Engine::Options o;
  o.nprocs = n;
  return o;
}

/// attach/detach guard so a failing test cannot leak a dangling collector.
struct Attached {
  explicit Attached(Collector& c) { attach(&c); }
  ~Attached() { detach(); }
};

TEST(Registry, CountersAndValues) {
  MetricsRegistry reg;
  reg.add("s", "n", 2);
  reg.add("s", "n", 3);
  reg.set("s", "m", 7);
  reg.observe_max("s", "peak", 5);
  reg.observe_max("s", "peak", 3);
  reg.add_value("s", "t", 1.5);
  reg.add_value("s", "t", 0.25);
  EXPECT_EQ(reg.get("s", "n"), 5u);
  EXPECT_EQ(reg.get("s", "m"), 7u);
  EXPECT_EQ(reg.get("s", "peak"), 5u);
  EXPECT_DOUBLE_EQ(reg.get_value("s", "t"), 1.75);
  EXPECT_EQ(reg.get("s", "absent"), 0u);
  EXPECT_EQ(reg.get("absent", "n"), 0u);
  EXPECT_TRUE(reg.has_scope("s"));
  EXPECT_FALSE(reg.has_scope("absent"));
}

TEST(Registry, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, 0.1, 1.0 / 3.0, 1.2345678901234567e-9,
                   9007199254740993.0, -2.5}) {
    EXPECT_DOUBLE_EQ(std::strtod(format_double(v).c_str(), nullptr), v);
  }
  EXPECT_EQ(format_double(std::nan("")), "0");  // JSON has no NaN
}

TEST(Registry, JsonEscapes) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Span, NoOpWithoutCollectorOrSimulation) {
  // Outside a simulation even with a collector attached.
  Collector c;
  Attached guard(c);
  {
    OBS_SPAN("ignored", TimeCategory::kCpu);
    span_counter("ignored", 1);
    counter_sample("ignored", 1.0);
  }
  EXPECT_TRUE(c.spans().empty());
  EXPECT_TRUE(c.samples().empty());

  // Inside a simulation with no collector attached.
  detach();
  sim::Engine::run(opts(1), [](sim::Proc& p) {
    OBS_SPAN("also_ignored", TimeCategory::kCpu);
    p.advance(1.0);
  });
  EXPECT_TRUE(c.spans().empty());
  attach(&c);  // let the guard detach cleanly
}

TEST(Span, RecordsNestingDepthAndCategoryDeltas) {
  Collector c;
  Attached guard(c);
  sim::Engine::run(opts(2), [](sim::Proc& p) {
    OBS_SPAN("outer", TimeCategory::kIo);
    p.advance(0.5, sim::TimeCategory::kCpu);
    {
      OBS_SPAN("inner", TimeCategory::kComm);
      span_counter("bytes", 100);
      span_counter("bytes", 28);
      p.advance(0.25, sim::TimeCategory::kComm);
    }
    p.advance(0.125, sim::TimeCategory::kIo);
  });
  ASSERT_TRUE(c.balanced());
  ASSERT_EQ(c.spans().size(), 4u);  // 2 ranks x 2 spans
  ASSERT_EQ(c.ranks(), 2);

  for (const SpanRecord& s : c.spans()) {
    if (s.name == "inner") {
      EXPECT_EQ(s.depth, 1);
      EXPECT_EQ(s.category, TimeCategory::kComm);
      EXPECT_DOUBLE_EQ(s.comm_dt, 0.25);
      EXPECT_DOUBLE_EQ(s.cpu_dt, 0.0);
      // Same-name counters merge on the open span.
      ASSERT_EQ(s.counters.size(), 1u);
      EXPECT_EQ(s.counters[0].first, "bytes");
      EXPECT_EQ(s.counters[0].second, 128u);
    } else {
      ASSERT_EQ(s.name, "outer");
      EXPECT_EQ(s.depth, 0);
      // Inclusive deltas: the inner span's comm time is covered too.
      EXPECT_DOUBLE_EQ(s.cpu_dt, 0.5);
      EXPECT_DOUBLE_EQ(s.comm_dt, 0.25);
      EXPECT_DOUBLE_EQ(s.io_dt, 0.125);
      EXPECT_DOUBLE_EQ(s.duration(), 0.875);
    }
  }
}

TEST(Span, RollupMatchesProcStats) {
  Collector c;
  Attached guard(c);
  auto res = sim::Engine::run(opts(3), [](sim::Proc& p) {
    OBS_SPAN("all", TimeCategory::kCpu);
    p.advance(0.1 * (p.rank() + 1), sim::TimeCategory::kCpu);
    p.advance(0.25, sim::TimeCategory::kComm);
    p.advance(0.0625, sim::TimeCategory::kIo);
  });
  ASSERT_TRUE(c.balanced());
  for (const SpanRecord& s : c.spans()) {
    const sim::ProcStats& st = res.stats[static_cast<std::size_t>(s.rank)];
    EXPECT_DOUBLE_EQ(s.cpu_dt, st.cpu_time);
    EXPECT_DOUBLE_EQ(s.comm_dt, st.comm_time);
    EXPECT_DOUBLE_EQ(s.io_dt, st.io_time);
    EXPECT_DOUBLE_EQ(s.duration(), st.total());
  }
}

TEST(Span, UnbalancedInstrumentationIsDetected) {
  Collector c;
  Attached guard(c);
  sim::Engine::run(opts(1), [&](sim::Proc& p) {
    c.begin_span(p, "left_open", TimeCategory::kCpu);
    p.advance(1.0);
  });
  EXPECT_FALSE(c.balanced());
  ASSERT_EQ(c.open_spans(0).size(), 1u);
  EXPECT_EQ(c.open_spans(0)[0], "left_open");

  // Ending with nothing open throws (and the engine rethrows it).
  Collector c2;
  attach(&c2);
  EXPECT_THROW(
      sim::Engine::run(opts(1), [&](sim::Proc& p) { c2.end_span(p); }),
      LogicError);
  attach(&c);  // restore for the guard
}

TEST(Span, CounterSamplesAreRecorded) {
  Collector c;
  Attached guard(c);
  sim::Engine::run(opts(1), [](sim::Proc& p) {
    p.advance(0.5);
    counter_sample("window_fill", 4096.0);
  });
  ASSERT_EQ(c.samples().size(), 1u);
  EXPECT_EQ(c.samples()[0].name, "window_fill");
  EXPECT_DOUBLE_EQ(c.samples()[0].value, 4096.0);
  EXPECT_DOUBLE_EQ(c.samples()[0].time, 0.5);
}

void run_workload(Collector& c) {
  attach(&c);
  sim::Engine::run(opts(2), [](sim::Proc& p) {
    OBS_SPAN("phase_a", TimeCategory::kCpu);
    p.advance(1.0 / 3.0);
    counter_sample("fill", 1234.5);
    {
      OBS_SPAN("phase_b", TimeCategory::kIo);
      span_counter("bytes", 4096);
      p.advance(0.1, sim::TimeCategory::kIo);
    }
  });
  detach();
}

TEST(Exporters, ChromeTraceIsDeterministicAndWellFormed) {
  Collector a, b;
  run_workload(a);
  run_workload(b);
  std::string ja = chrome_trace_json(a);
  std::string jb = chrome_trace_json(b);
  EXPECT_EQ(ja, jb);  // byte-identical across identical runs

  // Structural spot-checks (full JSON parsing is CI's job).
  EXPECT_NE(ja.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(ja.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(ja.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(ja.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(ja.find("phase_b"), std::string::npos);
  EXPECT_EQ(ja.find("\n\n"), std::string::npos);
}

TEST(Exporters, RegistryJsonIsDeterministic) {
  Collector a, b;
  run_workload(a);
  run_workload(b);
  a.registry().add("net", "bytes", 42);
  b.registry().add("net", "bytes", 42);
  EXPECT_EQ(a.registry().to_json(2), b.registry().to_json(2));
  EXPECT_NE(a.registry().to_json(2).find("\"net\""), std::string::npos);
}

TEST(Exporters, ReportAggregatesPhases) {
  Collector c;
  run_workload(c);
  Report r = build_report(c);
  ASSERT_EQ(r.ranks.size(), 2u);
  const PhaseStats* a = r.phase("phase_a");
  const PhaseStats* b = r.phase("phase_b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->calls, 2u);
  EXPECT_NEAR(a->total_time, 2.0 * (1.0 / 3.0 + 0.1), 1e-12);
  EXPECT_NEAR(b->io_time, 0.2, 1e-12);
  EXPECT_EQ(r.counter_sum("phase_b", "bytes"), 8192u);
  // Per-rank decomposition covers each rank's whole accounted time.
  for (const RankBreakdown& rb : r.ranks) {
    EXPECT_NEAR(rb.total_time, 1.0 / 3.0 + 0.1, 1e-12);
  }
  std::string text = report_text(r);
  EXPECT_NE(text.find("phase_a"), std::string::npos);
  EXPECT_NE(text.find("io-frac"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Timeline: virtual-clock gauge tracks.
// ---------------------------------------------------------------------------

TEST(Timeline, DedupsConsecutiveEqualValues) {
  Timeline tl;
  tl.record("q", 0.0, 1.0, /*integer=*/true);
  tl.record("q", 1.0, 1.0, /*integer=*/true);  // gauge did not move: dropped
  tl.record("q", 2.0, 2.0, /*integer=*/true);
  tl.record("rate", 0.5, 0.25);
  EXPECT_EQ(tl.points(), 3u);
  ASSERT_EQ(tl.tracks().size(), 2u);
  const Timeline::Track& q = tl.tracks().at("q");
  EXPECT_TRUE(q.integer);
  ASSERT_EQ(q.points.size(), 2u);
  EXPECT_DOUBLE_EQ(q.points[0].time, 0.0);
  EXPECT_DOUBLE_EQ(q.points[1].value, 2.0);
  EXPECT_FALSE(tl.tracks().at("rate").integer);
  tl.clear();
  EXPECT_TRUE(tl.empty());
}

TEST(Timeline, IntegerFingerprintStripsTimestampsAndDoubleTracks) {
  Timeline a, b;
  a.record("q", 0.0, 1.0, true);
  a.record("q", 1.0, 2.0, true);
  a.record("rate", 0.0, 0.5);  // double track: not part of the fingerprint
  b.record("q", 5.0, 1.0, true);  // same values at shifted times
  b.record("q", 9.0, 2.0, true);
  b.record("rate", 0.0, 0.75);
  EXPECT_EQ(a.integer_fingerprint(), "q:1,2\n");
  EXPECT_EQ(a.integer_fingerprint(), b.integer_fingerprint());
}

TEST(Timeline, JsonIsDeterministicAndTyped) {
  Timeline a, b;
  for (Timeline* t : {&a, &b}) {
    t->record("srv/backlog", 0.25, 3.0, true);
    t->record("hit_rate", 0.5, 1.0 / 3.0);
  }
  EXPECT_EQ(a.to_json(2), b.to_json(2));
  EXPECT_NE(a.to_json().find("\"srv/backlog\":{\"integer\":true"),
            std::string::npos);
  EXPECT_NE(a.to_json().find("\"integer\":false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram: log2-µs buckets, exact percentiles, nonzero-only export.
// ---------------------------------------------------------------------------

TEST(Histogram, BucketingIsExactBitArithmetic) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_of(1e-6), 0);    // exactly 1 µs
  EXPECT_EQ(Histogram::bucket_of(1.5e-6), 1);
  EXPECT_EQ(Histogram::bucket_of(2e-6), 2);    // power-of-two edges round up
  EXPECT_EQ(Histogram::bucket_of(3e-6), 2);
  EXPECT_EQ(Histogram::bucket_of(4e-6), 3);
  // A bucket's samples never exceed its upper edge.
  for (double s : {3e-6, 1e-3, 0.5, 7.25}) {
    EXPECT_LE(s, Histogram::bucket_upper_seconds(Histogram::bucket_of(s)));
  }
}

TEST(Histogram, PercentilesAreExactNearestRank) {
  Histogram h;
  for (int i = 100; i >= 1; --i) {  // insertion order must not matter
    h.record(static_cast<double>(i) * 1e-3);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.050);
  EXPECT_DOUBLE_EQ(h.percentile(95.0), 0.095);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.099);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.100);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.100);
}

TEST(Histogram, ExportIsNonzeroOnly) {
  MetricsRegistry reg;
  Histogram empty;
  empty.export_to(reg, "hist:never");
  EXPECT_FALSE(reg.has_scope("hist:never"));  // empty histogram: no scope

  Histogram h;
  h.record(3e-6);  // bucket 2
  h.record(3e-6);
  h.record(0.5);
  h.export_to(reg, "hist:op");
  ASSERT_TRUE(reg.has_scope("hist:op"));
  EXPECT_EQ(reg.get("hist:op", "bucket_2"), 2u);
  EXPECT_EQ(reg.get("hist:op", "count"), 3u);
  EXPECT_GT(reg.get_value("hist:op", "p99"), 0.0);
  // Only occupied buckets persist.
  const auto& counters = reg.scopes().at("hist:op").counters;
  EXPECT_EQ(counters.count("bucket_0"), 0u);
  EXPECT_EQ(counters.count("bucket_1"), 0u);
}

// ---------------------------------------------------------------------------
// Detail gating: with detail off, the collector records no gauges, latency
// samples or wait edges — the pre-PR export surface is untouched.
// ---------------------------------------------------------------------------

TEST(Detail, OffByDefaultRecordsNothing) {
  Collector c;
  Attached guard(c);
  EXPECT_FALSE(c.detail());
  sim::Engine::run(opts(1), [](sim::Proc& p) {
    gauge("track", 1.0);
    gauge_int("itrack", 2);
    latency_sample("op", 0.5);
    record_wait(WaitKind::kServerQueue, 0.0, 0.5);
    p.advance(1.0);
  });
  EXPECT_TRUE(c.timeline().empty());
  EXPECT_TRUE(c.histograms().empty());
  EXPECT_TRUE(c.waits().empty());
  const std::string before = c.registry().to_json(2);
  c.export_detail();  // must be a no-op with nothing recorded
  EXPECT_EQ(c.registry().to_json(2), before);
}

TEST(Detail, OnRecordsAndExportsUnderDedicatedScopes) {
  Collector c;
  c.set_detail(true);
  Attached guard(c);
  sim::Engine::run(opts(1), [](sim::Proc& p) {
    p.advance(0.5);
    gauge_int("srv/backlog", 3);
    latency_sample("pfs.read", 2e-3);
    record_wait(WaitKind::kTokenWait, 0.25, 0.5);
  });
  ASSERT_EQ(c.waits().size(), 1u);
  EXPECT_EQ(c.waits()[0].kind, WaitKind::kTokenWait);
  EXPECT_DOUBLE_EQ(c.waits()[0].duration(), 0.25);
  c.export_detail();
  EXPECT_TRUE(c.registry().has_scope("hist:pfs.read"));
  EXPECT_TRUE(c.registry().has_scope("timeline:srv/backlog"));
  EXPECT_EQ(c.registry().get("timeline:srv/backlog", "peak"), 3u);
}

TEST(Detail, DeferredModeWaitsAreDropped) {
  // Waits observed under the shadow clock (write-behind settling) describe
  // work the rank did not actually block on; they must not become blame.
  Collector c;
  c.set_detail(true);
  Attached guard(c);
  sim::Engine::run(opts(1), [&c](sim::Proc& p) {
    p.advance(0.25);
    {
      mpi::io::DeferredScope defer(p);
      c.record_wait(p, WaitKind::kSettleWait, 0.25, 0.5);
    }
    c.record_wait(p, WaitKind::kSettleWait, 0.25, 0.75);
  });
  ASSERT_EQ(c.waits().size(), 1u);
  EXPECT_DOUBLE_EQ(c.waits()[0].t_end, 0.75);
}

// ---------------------------------------------------------------------------
// Critical-path blame on a synthetic workload with known answers.
// ---------------------------------------------------------------------------

TEST(Blame, ReattributesWaitsAndSumsToWall) {
  Collector c;
  c.set_detail(true);
  Attached guard(c);
  sim::Engine::run(opts(2), [](sim::Proc& p) {
    OBS_SPAN("dump", TimeCategory::kIo);
    {
      OBS_SPAN("phase_io", TimeCategory::kIo);
      const double t0 = p.now();
      p.advance(0.5, sim::TimeCategory::kIo);
      // 0.2 s of that io was really a server queue.
      record_wait(WaitKind::kServerQueue, t0, t0 + 0.2);
    }
    {
      OBS_SPAN("phase_comm", TimeCategory::kComm);
      const double t0 = p.now();
      p.advance(0.25, sim::TimeCategory::kComm);
      // 0.1 s of that comm was idle at a receive.
      record_wait(WaitKind::kRecvWait, t0, t0 + 0.1);
    }
    p.advance(0.125, sim::TimeCategory::kCpu);  // root time outside any phase
  });
  ASSERT_TRUE(c.balanced());

  const BlameReport r = build_blame(c, "dump");
  ASSERT_EQ(r.nranks, 2);
  EXPECT_DOUBLE_EQ(r.wall_time, 0.875);
  constexpr double kEps = 1e-12;
  for (const RankBlame& rb : r.ranks) {
    EXPECT_NEAR(rb.wall, 0.875, kEps);
    EXPECT_NEAR(rb.blame[static_cast<int>(BlameCategory::kIo)], 0.3, kEps);
    EXPECT_NEAR(rb.blame[static_cast<int>(BlameCategory::kServerQueue)], 0.2,
                kEps);
    EXPECT_NEAR(rb.blame[static_cast<int>(BlameCategory::kComm)], 0.15, kEps);
    EXPECT_NEAR(rb.blame[static_cast<int>(BlameCategory::kRecvWait)], 0.1,
                kEps);
    // The 0.125 s cpu advance is not covered by any depth-1 phase.
    EXPECT_NEAR(rb.blame[static_cast<int>(BlameCategory::kUnattributed)],
                0.125, kEps);
    double total = 0.0;
    for (double v : rb.blame) total += v;
    EXPECT_NEAR(total, rb.wall, kEps);  // blame is a decomposition, not a sample
    EXPECT_NEAR(rb.attributed, 0.75, kEps);
  }
  EXPECT_NEAR(r.attributed_fraction, 0.75 / 0.875, kEps);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].name, "phase_comm");  // sorted by name
  EXPECT_EQ(r.phases[1].name, "phase_io");
  EXPECT_DOUBLE_EQ(r.phases[1].imbalance(), 1.0);  // symmetric workload

  // Renderings are deterministic and mention what matters.
  EXPECT_EQ(blame_text(r), blame_text(build_blame(c, "dump")));
  const std::string json = blame_json(r);
  EXPECT_EQ(json, blame_json(build_blame(c, "dump")));
  EXPECT_NE(json.find("\"server_queue\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_rank\""), std::string::npos);
}

TEST(Blame, MissingRootYieldsEmptyReport) {
  Collector c;
  Attached guard(c);
  sim::Engine::run(opts(1), [](sim::Proc& p) {
    OBS_SPAN("other", TimeCategory::kCpu);
    p.advance(0.5);
  });
  const BlameReport r = build_blame(c, "dump");
  EXPECT_EQ(r.nranks, 0);
  EXPECT_TRUE(r.phases.empty());
  EXPECT_TRUE(r.ranks.empty());
}

}  // namespace
}  // namespace paramrio::obs
