// Tests for the PnetCDF-analogue: define/data mode discipline, header
// round-trips, collective and independent subarray access, and the
// single-synchronisation property that distinguishes it from the HDF5 path.
#include <gtest/gtest.h>

#include <cstring>

#include "pfs/local_fs.hpp"
#include "pnetcdf/nc_file.hpp"

namespace paramrio::pnetcdf {
namespace {

using mpi::Comm;
using mpi::Runtime;
using mpi::RuntimeParams;

RuntimeParams rparams(int n) {
  RuntimeParams p;
  p.nprocs = n;
  return p;
}

std::vector<std::byte> seq_f32(std::size_t n, float base = 0.0f) {
  std::vector<std::byte> v(n * 4);
  for (std::size_t i = 0; i < n; ++i) {
    float f = base + static_cast<float>(i);
    std::memcpy(v.data() + i * 4, &f, 4);
  }
  return v;
}

TEST(NcFile, DefineModeDiscipline) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    NcFile nc = NcFile::create(c, fs, "a.nc");
    EXPECT_TRUE(nc.in_define_mode());
    int d = nc.def_dim("n", 8);
    int v = nc.def_var("x", NcType::kFloat, {d});
    // Data-mode ops are rejected in define mode.
    EXPECT_THROW(nc.put_vara_all(v, {0}, {8}, seq_f32(8)), LogicError);
    EXPECT_THROW(nc.close(), LogicError);  // close before enddef
    nc.enddef();
    EXPECT_FALSE(nc.in_define_mode());
    // Define-mode ops are rejected in data mode.
    EXPECT_THROW(nc.def_dim("m", 4), LogicError);
    EXPECT_THROW(nc.def_var("y", NcType::kFloat, {d}), LogicError);
    nc.put_vara_all(v, {0}, {8}, seq_f32(8));
    nc.close();
  });
}

TEST(NcFile, HeaderRoundTripAcrossOpen) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(2));
  rt.run([&](Comm& c) {
    {
      NcFile nc = NcFile::create(c, fs, "h.nc");
      int dz = nc.def_dim("z", 4);
      int dx = nc.def_dim("x", 6);
      nc.def_var("density", NcType::kFloat, {dz, dx});
      nc.def_var("ids", NcType::kInt64, {dz});
      double t = 2.5;
      nc.put_att("time", std::as_bytes(std::span(&t, 1)));
      nc.enddef();
      int v = nc.inq_varid("density");
      if (c.rank() == 0) {
        nc.put_vara(v, {0, 0}, {4, 6}, seq_f32(24, 7.0f));
      }
      c.barrier();
      nc.close();
    }
    {
      NcFile nc = NcFile::open(c, fs, "h.nc");
      EXPECT_EQ(nc.var_count(), 2u);
      int v = nc.inq_varid("density");
      EXPECT_EQ(nc.var(v).type, NcType::kFloat);
      EXPECT_EQ(nc.dim(nc.var(v).dim_ids[0]).length, 4u);
      EXPECT_EQ(nc.dim(nc.var(v).dim_ids[1]).length, 6u);
      EXPECT_TRUE(nc.has_att("time"));
      double t;
      auto att = nc.get_att("time");
      std::memcpy(&t, att.data(), 8);
      EXPECT_DOUBLE_EQ(t, 2.5);
      std::vector<std::byte> out(24 * 4);
      nc.get_var_all(v, out);
      EXPECT_EQ(out, seq_f32(24, 7.0f));
      EXPECT_THROW(nc.inq_varid("absent"), IoError);
      EXPECT_THROW(nc.get_att("absent"), IoError);
      nc.close();
    }
  });
}

TEST(NcFile, DataRegionIsAligned) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    NcConfig cfg;
    cfg.data_alignment = 4096;
    NcFile nc = NcFile::create(c, fs, "al.nc", cfg);
    int d = nc.def_dim("n", 100);
    int v1 = nc.def_var("a", NcType::kFloat, {d});
    int v2 = nc.def_var("b", NcType::kDouble, {d});
    nc.enddef();
    EXPECT_EQ(nc.var(v1).offset % 4096, 0u);       // region aligned
    EXPECT_EQ(nc.var(v2).offset % 8, 0u);          // var aligned
    EXPECT_EQ(nc.var(v2).offset, nc.var(v1).offset + 400);
    nc.put_var_all(v1, seq_f32(100));
    nc.close();
  });
}

class NcParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(NcParallelSweep, BlockPartitionedRoundTrip) {
  const int p = GetParam();
  const std::uint64_t n = 16;
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(p));
  rt.run([&](Comm& c) {
    {
      NcFile nc = NcFile::create(c, fs, "par.nc");
      int dz = nc.def_dim("z", n);
      int dy = nc.def_dim("y", n);
      int v = nc.def_var("field", NcType::kFloat, {dz, dy});
      nc.enddef();
      std::uint64_t rows = n / static_cast<std::uint64_t>(p);
      std::uint64_t r0 = rows * static_cast<std::uint64_t>(c.rank());
      nc.put_vara_all(v, {r0, 0}, {rows, n},
                      seq_f32(rows * n, static_cast<float>(c.rank()) * 1000));
      nc.close();
    }
    {
      NcFile nc = NcFile::open(c, fs, "par.nc");
      int v = nc.inq_varid("field");
      // Transposed partition: columns.
      std::uint64_t cols = n / static_cast<std::uint64_t>(p);
      std::uint64_t c0 = cols * static_cast<std::uint64_t>(c.rank());
      std::vector<std::byte> out(n * cols * 4);
      nc.get_vara_all(v, {0, c0}, {n, cols}, out);
      std::uint64_t rows = n / static_cast<std::uint64_t>(p);
      std::size_t k = 0;
      for (std::uint64_t z = 0; z < n; ++z) {
        for (std::uint64_t y = c0; y < c0 + cols; ++y) {
          float expect = static_cast<float>(z / rows) * 1000 +
                         static_cast<float>((z % rows) * n + y);
          float got;
          std::memcpy(&got, out.data() + k * 4, 4);
          EXPECT_FLOAT_EQ(got, expect);
          ++k;
        }
      }
      nc.close();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, NcParallelSweep, ::testing::Values(1, 2, 4, 8));

TEST(NcFile, ZeroCountParticipation) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(4));
  rt.run([&](Comm& c) {
    NcFile nc = NcFile::create(c, fs, "zero.nc");
    int d = nc.def_dim("n", 6);
    int v = nc.def_var("x", NcType::kDouble, {d});
    nc.enddef();
    // Only ranks 0..2 hold data; rank 3 joins with a zero count.
    if (c.rank() < 3) {
      std::vector<std::byte> buf(2 * 8);
      double vals[2] = {c.rank() * 2.0, c.rank() * 2.0 + 1};
      std::memcpy(buf.data(), vals, 16);
      nc.put_vara_all(v, {static_cast<std::uint64_t>(c.rank()) * 2}, {2}, buf);
    } else {
      nc.put_vara_all(v, {0}, {0}, {});
    }
    std::vector<std::byte> all(48);
    nc.get_var_all(v, all);
    for (int i = 0; i < 6; ++i) {
      double got;
      std::memcpy(&got, all.data() + i * 8, 8);
      EXPECT_DOUBLE_EQ(got, static_cast<double>(i));
    }
    nc.close();
  });
}

TEST(NcFile, ValidationErrors) {
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(1));
  rt.run([&](Comm& c) {
    NcFile nc = NcFile::create(c, fs, "v.nc");
    EXPECT_THROW(nc.def_dim("z", 0), LogicError);
    int d = nc.def_dim("z", 4);
    EXPECT_THROW(nc.def_var("x", NcType::kFloat, {}), LogicError);
    EXPECT_THROW(nc.def_var("x", NcType::kFloat, {5}), LogicError);
    nc.def_var("x", NcType::kFloat, {d});
    EXPECT_THROW(nc.def_var("x", NcType::kFloat, {d}), LogicError);
    nc.enddef();
    int v = nc.inq_varid("x");
    EXPECT_THROW(nc.put_vara_all(v, {0}, {4}, seq_f32(3)), LogicError);
    EXPECT_THROW(nc.put_vara_all(v, {0, 0}, {4, 1}, seq_f32(4)), LogicError);
    nc.close();
  });
  // Opening garbage fails with FormatError.
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      int fd = fs.open("junk.nc", pfs::OpenMode::kCreate);
      std::vector<std::byte> junk(64, std::byte{0x11});
      fs.write_at(fd, 0, junk);
      fs.close(fd);
    }
    EXPECT_THROW(NcFile::open(c, fs, "junk.nc"), FormatError);
  });
}

TEST(NcFile, SingleSynchronisationPerDefinePhase) {
  // Creating many variables must NOT scale synchronisation like HDF5's
  // per-dataset create/close: time the define phase of 64 variables and
  // compare against 64 barrier round-trips.
  pfs::LocalFs fs(pfs::LocalFsParams{});
  Runtime rt(rparams(8));
  double define_time = 0, barrier_time = 0;
  rt.run([&](Comm& c) {
    c.barrier();
    double t0 = c.proc().now();
    NcFile nc = NcFile::create(c, fs, "many.nc");
    int d = nc.def_dim("n", 4);
    for (int i = 0; i < 64; ++i) {
      nc.def_var("v" + std::to_string(i), NcType::kFloat, {d});
    }
    nc.enddef();
    c.barrier();
    if (c.rank() == 0) define_time = c.proc().now() - t0;
    nc.close();

    c.barrier();
    t0 = c.proc().now();
    for (int i = 0; i < 64; ++i) c.barrier();
    if (c.rank() == 0) barrier_time = c.proc().now() - t0;
  });
  EXPECT_LT(define_time, barrier_time);
}

}  // namespace
}  // namespace paramrio::pnetcdf
