// Burst-buffer staging tier: the differential, crash, and fault matrices.
//
//   * Differential: the same ENZO workload dumped through a StagedFs
//     (LocalDiskFs staging in front of a StripedFs destination) must end up
//     byte-identical — logical image and drained destination files — to a
//     direct StripedFs dump, for all four backends, schedule seeds {0,1,2}
//     and both engine backends, with clean check:: audits and clean verify::
//     reports.
//   * Crash consistency: a crash planted before/during/after the drain (on
//     either tier, for sync and async policies) must always leave the
//     series recoverable to exactly its latest committed generation — an
//     interrupted drain costs progress, never a torn restart.
//   * Faults: transient errors and a server outage on the staging tier are
//     absorbed by the stage retry budget and converge to the no-fault
//     bytes; a drain that exhausts its budget surfaces a diagnosed error
//     and retains the staged bytes — no silent data loss.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "amr/particles_par.hpp"
#include "check/io_checker.hpp"
#include "enzo/backends.hpp"
#include "enzo/checkpoint.hpp"
#include "enzo/simulation.hpp"
#include "fault/fault.hpp"
#include "obs/critical_path.hpp"
#include "obs/profiler.hpp"
#include "pfs/local_disk_fs.hpp"
#include "pfs/striped_fs.hpp"
#include "stage/staged_fs.hpp"
#include "verify/verify.hpp"

namespace paramrio::enzo {
namespace {

using stage::DrainPolicy;
using stage::StagedFs;
using stage::StagedFsParams;

mpi::RuntimeParams rparams(int n, std::uint64_t perturb_seed = 0,
                           sim::SchedBackend engine = sim::SchedBackend::kAuto) {
  mpi::RuntimeParams p;
  p.nprocs = n;
  p.perturb_seed = perturb_seed;
  p.backend = engine;
  return p;
}

SimulationConfig workload() {
  SimulationConfig c;
  c.root_dims = {16, 16, 16};
  c.particles_per_cell = 0.25;
  c.n_clumps = 4;
  c.refine.threshold = 3.0;
  c.refine.min_box = 2;
  c.compute_per_cell = 0.0;
  return c;
}

enum class Kind { kHdf4, kMpiIo, kHdf5, kPnetcdf };

constexpr Kind kAllKinds[] = {Kind::kHdf4, Kind::kMpiIo, Kind::kHdf5,
                              Kind::kPnetcdf};

const char* to_cstr(Kind k) {
  switch (k) {
    case Kind::kHdf4:
      return "hdf4";
    case Kind::kMpiIo:
      return "mpiio";
    case Kind::kHdf5:
      return "hdf5";
    case Kind::kPnetcdf:
      return "pnetcdf";
  }
  return "?";
}

std::unique_ptr<IoBackend> make_backend(Kind k, pfs::FileSystem& fs,
                                        const mpi::io::Hints& hints) {
  switch (k) {
    case Kind::kHdf4:
      return std::make_unique<Hdf4SerialBackend>(fs);
    case Kind::kMpiIo:
      return std::make_unique<MpiIoBackend>(fs, hints);
    case Kind::kHdf5: {
      hdf5::FileConfig cfg;
      cfg.io_hints = hints;
      return std::make_unique<Hdf5ParallelBackend>(fs, cfg);
    }
    case Kind::kPnetcdf:
      return std::make_unique<PnetcdfBackend>(fs, hints);
  }
  throw LogicError("bad backend kind");
}

void sort_particles(amr::ParticleSet& p) { amr::local_sort_by_id(p); }

void expect_states_equal(const SimulationState& a, const SimulationState& b) {
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.cycle, b.cycle);
  ASSERT_EQ(a.my_fields.size(), b.my_fields.size());
  for (std::size_t f = 0; f < a.my_fields.size(); ++f) {
    EXPECT_EQ(a.my_fields[f], b.my_fields[f]) << "field " << f;
  }
  amr::ParticleSet pa = a.my_particles, pb = b.my_particles;
  sort_particles(pa);
  sort_particles(pb);
  EXPECT_EQ(pa, pb);
}

/// FNV-1a per stored file — the cross-run comparison unit.
std::map<std::string, std::uint64_t> store_checksums(
    const stor::ObjectStore& store) {
  std::map<std::string, std::uint64_t> sums;
  for (const auto& name : store.list()) {
    std::vector<std::byte> bytes(store.size(name));
    if (!bytes.empty()) store.read_at(name, 0, bytes);
    std::uint64_t h = 1469598103934665603ULL;
    for (std::byte b : bytes) {
      h ^= static_cast<std::uint64_t>(b);
      h *= 1099511628211ULL;
    }
    sums.emplace(name, h);
  }
  return sums;
}

/// Checksums of the non-empty files only: the destination tier receives a
/// file when its first payload byte drains, so zero-byte creations live in
/// the logical image but never materialise a destination object.
std::map<std::string, std::uint64_t> nonzero_checksums(
    const stor::ObjectStore& store) {
  auto sums = store_checksums(store);
  for (auto it = sums.begin(); it != sums.end();) {
    it = store.size(it->first) == 0 ? sums.erase(it) : std::next(it);
  }
  return sums;
}

constexpr int kProcs = 4;

pfs::StripedFsParams striped_params() {
  pfs::StripedFsParams sp;
  sp.stripe_size = 64 * KiB;
  sp.n_io_nodes = 4;
  return sp;
}

/// The dump+restart body shared by the direct and staged runs: one evolved
/// cycle, dump, fresh-state restart, restart must equal the dumped state.
void dump_restart(Kind kind, pfs::FileSystem& fs,
                  const mpi::io::Hints& hints, check::IoChecker& checker,
                  mpi::Comm& c, StagedFs* staged, DrainPolicy policy) {
  auto backend = make_backend(kind, fs, hints);
  EnzoSimulation sim(c, workload());
  sim.initialize_from_universe();
  sim.evolve_cycle();
  if (c.rank() == 0) checker.begin_phase("dump");
  c.barrier();
  backend->write_dump(c, sim.state(), "dump");
  if (staged != nullptr) {
    c.barrier();
    staged->drain_mine(policy);
    if (policy == DrainPolicy::kAsync) staged->drain_settle();
    c.barrier();
  }

  if (c.rank() == 0) checker.begin_phase("restart");
  c.barrier();
  EnzoSimulation sim2(c, workload());
  backend->read_restart(c, sim2.state(), "dump");
  expect_states_equal(sim.state(), sim2.state());
}

struct DirectOutcome {
  std::map<std::string, std::uint64_t> all;      ///< every file
  std::map<std::string, std::uint64_t> nonzero;  ///< non-empty files only
};

/// Direct run: the workload written straight onto the destination-class
/// StripedFs.  Returns the per-file checksums of its store.
DirectOutcome run_direct(Kind kind, std::uint64_t perturb,
                         sim::SchedBackend engine) {
  net::NetworkParams np;
  pfs::StripedFsParams sp = striped_params();
  net::Network nw(np, kProcs, sp.n_io_nodes);
  pfs::StripedFs fs(sp, nw);
  check::CheckOptions copts;
  copts.padding_alignment = 4096;
  check::IoChecker checker(copts);
  fs.attach_observer(&checker);

  verify::Verifier v;
  {
    verify::Attach attach(v);
    mpi::RuntimeParams rp = rparams(kProcs, perturb, engine);
    rp.extra_fabric_nodes = sp.n_io_nodes;
    mpi::Runtime rt(rp);
    rt.run([&](mpi::Comm& c) {
      dump_restart(kind, fs, {}, checker, c, nullptr, DrainPolicy::kLazy);
    });
  }
  check::CheckReport audit = checker.analyze(&fs.store());
  EXPECT_TRUE(audit.clean()) << to_cstr(kind) << " direct:\n"
                             << audit.format();
  EXPECT_TRUE(v.report().clean()) << to_cstr(kind) << " direct:\n"
                                  << v.report().format();
  return DirectOutcome{store_checksums(fs.store()),
                       nonzero_checksums(fs.store())};
}

struct StagedOutcome {
  std::map<std::string, std::uint64_t> logical;  ///< facade store, all files
  std::map<std::string, std::uint64_t> drained;  ///< destination, non-empty
  std::uint64_t unmapped_read_bytes = 0;
  std::uint64_t staged_live_bytes = 0;
};

/// Staged run: same workload through a LocalDiskFs-staged facade over the
/// same destination-class StripedFs, draining under `policy`.
StagedOutcome run_staged(Kind kind, DrainPolicy policy, std::uint64_t perturb,
                         sim::SchedBackend engine,
                         fault::Injector* staging_faults = nullptr,
                         StagedFsParams params = StagedFsParams{}) {
  net::NetworkParams np;
  pfs::StripedFsParams sp = striped_params();
  net::Network nw(np, kProcs, sp.n_io_nodes);
  pfs::StripedFs dest(sp, nw);
  pfs::LocalDiskFs staging(pfs::LocalDiskFsParams{}, kProcs);
  if (staging_faults != nullptr) staging.attach_fault_hook(staging_faults);
  StagedFs staged(params, staging, dest);

  check::CheckOptions copts;
  copts.padding_alignment = 4096;
  check::IoChecker checker(copts);
  staged.attach_observer(&checker);

  verify::Verifier v;
  {
    verify::Attach attach(v);
    mpi::RuntimeParams rp = rparams(kProcs, perturb, engine);
    rp.extra_fabric_nodes = sp.n_io_nodes;
    mpi::Runtime rt(rp);
    rt.run([&](mpi::Comm& c) {
      dump_restart(kind, staged, {}, checker, c, &staged, policy);
    });
  }
  if (policy == DrainPolicy::kLazy) staged.flush_untimed();

  check::CheckReport audit = checker.analyze(&staged.store());
  EXPECT_TRUE(audit.clean()) << to_cstr(kind) << " staged:\n"
                             << audit.format();
  EXPECT_TRUE(v.report().clean()) << to_cstr(kind) << " staged:\n"
                                  << v.report().format();

  StagedOutcome o;
  o.logical = store_checksums(staged.store());
  o.drained = nonzero_checksums(dest.store());
  o.unmapped_read_bytes = staged.unmapped_read_bytes();
  o.staged_live_bytes = staged.staged_live_bytes();
  return o;
}

void expect_matches_direct(const StagedOutcome& staged,
                           const DirectOutcome& direct,
                           const std::string& label) {
  // The logical image is the full direct file set, byte for byte; the
  // destination holds every non-empty file, byte for byte.
  EXPECT_EQ(staged.logical, direct.all) << label << ": logical image diverged";
  EXPECT_EQ(staged.drained, direct.nonzero)
      << label << ": drained destination diverged";
  EXPECT_EQ(staged.unmapped_read_bytes, 0u)
      << label << ": some reads were served by neither tier";
  EXPECT_EQ(staged.staged_live_bytes, 0u)
      << label << ": drain left staged bytes behind";
}

// ---------------------------------------------------------------------------
// Differential matrix: backends x schedule seeds x engine backends.
// ---------------------------------------------------------------------------

class StageDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StageDifferential, StagedDumpsMatchDirectDumps) {
  const std::uint64_t seed = GetParam();
  for (Kind kind : kAllKinds) {
    const DirectOutcome direct =
        run_direct(kind, seed, sim::SchedBackend::kFibers);
    const auto fibers =
        run_staged(kind, DrainPolicy::kSync, seed, sim::SchedBackend::kFibers);
    expect_matches_direct(fibers, direct,
                          std::string(to_cstr(kind)) + "/fibers/seed" +
                              std::to_string(seed));
    const auto threads = run_staged(kind, DrainPolicy::kSync, seed,
                                    sim::SchedBackend::kThreads);
    expect_matches_direct(threads, direct,
                          std::string(to_cstr(kind)) + "/threads/seed" +
                              std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(SchedSeeds, StageDifferential,
                         ::testing::Values(0ull, 1ull, 2ull),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Every drain policy converges to the same destination bytes.
TEST(StageDifferential, AllDrainPoliciesConverge) {
  const DirectOutcome direct =
      run_direct(Kind::kMpiIo, 0, sim::SchedBackend::kFibers);
  const auto sync_run =
      run_staged(Kind::kMpiIo, DrainPolicy::kSync, 0,
                 sim::SchedBackend::kFibers);
  const auto async_run =
      run_staged(Kind::kMpiIo, DrainPolicy::kAsync, 0,
                 sim::SchedBackend::kFibers);
  const auto lazy_run =
      run_staged(Kind::kMpiIo, DrainPolicy::kLazy, 0,
                 sim::SchedBackend::kFibers);
  EXPECT_EQ(sync_run.logical, direct.all);
  EXPECT_EQ(async_run.logical, direct.all);
  EXPECT_EQ(lazy_run.logical, direct.all);
  EXPECT_EQ(async_run.drained, sync_run.drained);
  EXPECT_EQ(lazy_run.drained, sync_run.drained);
  EXPECT_EQ(async_run.staged_live_bytes, 0u);
  EXPECT_EQ(lazy_run.staged_live_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Crash matrix: crashes planted before / during / after the drain, on either
// tier, for sync and async policies.  The invariant: a fresh facade's
// recover() + restore_latest always lands on the latest committed
// generation, with exactly that generation's bytes.
// ---------------------------------------------------------------------------

struct CrashCase {
  DrainPolicy policy = DrainPolicy::kSync;
  bool on_staging = true;  ///< crash the staging tier (else the destination)
  double fraction = 0.5;   ///< where in generation 1's tier-op window
  const char* label = "";
};

class StageCrashMatrix : public ::testing::TestWithParam<CrashCase> {};

TEST_P(StageCrashMatrix, RecoverRestoresLatestCommittedGeneration) {
  const CrashCase cc = GetParam();
  const Kind kind = Kind::kMpiIo;
  const SimulationConfig cfg = workload();

  // Probe run: count each tier's I/O ops at the generation boundaries so
  // the crash lands inside generation 1's window on the chosen tier.
  std::uint64_t tier_ops_g0 = 0;
  std::uint64_t tier_ops_g1 = 0;
  {
    net::NetworkParams np;
    pfs::StripedFsParams sp = striped_params();
    net::Network nw(np, kProcs, sp.n_io_nodes);
    pfs::StripedFs dest(sp, nw);
    pfs::LocalDiskFs staging(pfs::LocalDiskFsParams{}, kProcs);
    StagedFs staged(StagedFsParams{}, staging, dest);
    fault::Injector probe{fault::FaultPlan{}};  // counts, injects nothing
    (cc.on_staging ? static_cast<pfs::FileSystem&>(staging)
                   : static_cast<pfs::FileSystem&>(dest))
        .attach_fault_hook(&probe);
    mpi::RuntimeParams rp = rparams(kProcs);
    rp.extra_fabric_nodes = sp.n_io_nodes;
    mpi::Runtime rt(rp);
    rt.run([&](mpi::Comm& c) {
      auto backend = make_backend(kind, staged, {});
      CheckpointSeries series(*backend, staged, "ck");
      series.set_staging(staged, cc.policy);
      EnzoSimulation sim(c, cfg);
      sim.initialize_from_universe();
      sim.evolve_cycle();
      series.dump(c, sim.state(), 0);
      if (c.rank() == 0) tier_ops_g0 = probe.counters().io_ops;
      c.barrier();
      sim.evolve_cycle();
      series.dump(c, sim.state(), 1);
      if (cc.policy == DrainPolicy::kAsync) staged.drain_settle();
      c.barrier();
      if (c.rank() == 0) tier_ops_g1 = probe.counters().io_ops;
      c.barrier();
    });
  }
  ASSERT_GT(tier_ops_g1, tier_ops_g0 + 4)
      << cc.label << ": generation-1 window too small to plant a crash in";

  // Crash run: same deterministic op stream, one crash planted at the
  // requested fraction of generation 1's tier window.
  net::NetworkParams np;
  pfs::StripedFsParams sp = striped_params();
  net::Network nw(np, kProcs, sp.n_io_nodes);
  pfs::StripedFs dest(sp, nw);
  pfs::LocalDiskFs staging(pfs::LocalDiskFsParams{}, kProcs);
  fault::FaultPlan plan;
  fault::FaultSpec crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.first_op =
      tier_ops_g0 + static_cast<std::uint64_t>(
                        cc.fraction *
                        static_cast<double>(tier_ops_g1 - tier_ops_g0));
  crash.max_faults = 1;
  plan.specs.push_back(crash);
  fault::Injector injector(plan);
  (cc.on_staging ? static_cast<pfs::FileSystem&>(staging)
                 : static_cast<pfs::FileSystem&>(dest))
      .attach_fault_hook(&injector);

  std::vector<SimulationState> states[2];
  states[0].resize(kProcs);
  states[1].resize(kProcs);
  bool crashed = false;
  {
    StagedFs staged(StagedFsParams{}, staging, dest);
    mpi::RuntimeParams rp = rparams(kProcs);
    rp.extra_fabric_nodes = sp.n_io_nodes;
    mpi::Runtime rt(rp);
    try {
      rt.run([&](mpi::Comm& c) {
        auto backend = make_backend(kind, staged, {});
        CheckpointSeries series(*backend, staged, "ck");
        series.set_staging(staged, cc.policy);
        EnzoSimulation sim(c, cfg);
        sim.initialize_from_universe();
        sim.evolve_cycle();
        states[0][static_cast<std::size_t>(c.rank())] = sim.state();
        series.dump(c, sim.state(), 0);
        c.barrier();
        sim.evolve_cycle();
        states[1][static_cast<std::size_t>(c.rank())] = sim.state();
        series.dump(c, sim.state(), 1);
        if (cc.policy == DrainPolicy::kAsync) staged.drain_settle();
      });
    } catch (const CrashError&) {
      crashed = true;
    }
  }
  ASSERT_TRUE(crashed) << cc.label;
  EXPECT_EQ(injector.counters().count(fault::FaultKind::kCrash), 1u);
  injector.set_enabled(false);

  // Recovery: a fresh facade over the surviving tiers.  Whatever the
  // surviving markers say is committed must restore byte-identically — and
  // generation 0 must always have survived (it was fully dumped and, for
  // sync, destination-durable before its marker).
  StagedFs staged2(StagedFsParams{}, staging, dest);
  staged2.recover();
  auto backend = make_backend(kind, staged2, {});
  CheckpointSeries series(*backend, staged2, "ck");
  ASSERT_TRUE(series.committed(0)) << cc.label;
  const auto latest = series.latest_committed(1);
  ASSERT_TRUE(latest.has_value()) << cc.label;

  mpi::RuntimeParams rp = rparams(kProcs);
  rp.extra_fabric_nodes = sp.n_io_nodes;
  mpi::Runtime rt(rp);
  rt.run([&](mpi::Comm& c) {
    auto b = make_backend(kind, staged2, {});
    CheckpointSeries s2(*b, staged2, "ck");
    EnzoSimulation sim(c, cfg);
    const std::uint64_t gen = s2.restore_latest(c, sim.state(), 1);
    EXPECT_EQ(gen, *latest) << cc.label;
    expect_states_equal(
        states[gen][static_cast<std::size_t>(c.rank())], sim.state());
  });
  EXPECT_EQ(staged2.unmapped_read_bytes(), 0u) << cc.label;
}

INSTANTIATE_TEST_SUITE_P(
    Plants, StageCrashMatrix,
    ::testing::Values(
        CrashCase{DrainPolicy::kSync, true, 0.15, "sync_staging_early"},
        CrashCase{DrainPolicy::kSync, true, 0.85, "sync_staging_late"},
        CrashCase{DrainPolicy::kSync, false, 0.5, "sync_dest_mid_drain"},
        CrashCase{DrainPolicy::kAsync, true, 0.4, "async_staging_mid"},
        CrashCase{DrainPolicy::kAsync, false, 0.5, "async_dest_mid_drain"},
        CrashCase{DrainPolicy::kAsync, true, 0.95, "async_staging_post"}),
    [](const auto& info) { return std::string(info.param.label); });

// ---------------------------------------------------------------------------
// Fault matrix: survivable faults on the staging tier, and the negative
// drain-budget contract.
// ---------------------------------------------------------------------------

TEST(StageFaults, TransientAndOutageOnStagingTierConverge) {
  // Transient EIO + short transfers everywhere on the staging tier, plus a
  // full server outage window early in the run; the stage retry budget must
  // ride all of it out and converge to the no-fault bytes.
  const auto clean =
      run_staged(Kind::kMpiIo, DrainPolicy::kSync, 0,
                 sim::SchedBackend::kFibers);

  fault::FaultPlan plan;
  plan.seed = 77;
  fault::FaultSpec eio;
  eio.kind = fault::FaultKind::kTransientError;
  eio.probability = 0.03;
  eio.max_consecutive = 2;
  fault::FaultSpec shortw;
  shortw.kind = fault::FaultKind::kShortWrite;
  shortw.probability = 0.03;
  shortw.max_consecutive = 2;
  fault::FaultSpec outage;
  outage.kind = fault::FaultKind::kServerDown;
  outage.path_substr = ".stage/";
  outage.after_time = 0.05;
  outage.until_time = 0.15;
  plan.specs.push_back(eio);
  plan.specs.push_back(shortw);
  plan.specs.push_back(outage);
  fault::Injector injector(plan);

  StagedFsParams params;
  params.stage_retry.max_retries = 25;  // budget must outlast the outage
  const auto faulted =
      run_staged(Kind::kMpiIo, DrainPolicy::kSync, 0,
                 sim::SchedBackend::kFibers, &injector, params);

  EXPECT_GT(injector.counters().injected_total(), 0u)
      << "plan injected nothing; the run proves nothing";
  EXPECT_EQ(faulted.logical, clean.logical);
  EXPECT_EQ(faulted.drained, clean.drained);
  EXPECT_EQ(faulted.unmapped_read_bytes, 0u);
  EXPECT_EQ(faulted.staged_live_bytes, 0u);
}

TEST(StageFaults, DrainBudgetExhaustionIsDiagnosedNotSilent) {
  net::NetworkParams np;
  pfs::StripedFsParams sp = striped_params();
  net::Network nw(np, 1, sp.n_io_nodes);
  pfs::StripedFs dest(sp, nw);
  pfs::LocalDiskFs staging(pfs::LocalDiskFsParams{}, 1);

  // Every destination write fails, forever: the drain budget cannot win.
  fault::FaultPlan plan;
  fault::FaultSpec eio;
  eio.kind = fault::FaultKind::kTransientError;
  eio.match_reads = false;
  plan.specs.push_back(eio);
  fault::Injector injector(plan);
  dest.attach_fault_hook(&injector);

  StagedFsParams params;
  params.drain_retry.max_retries = 2;
  StagedFs staged(params, staging, dest);

  const std::vector<std::byte> payload(256 * KiB, std::byte{0x5a});
  sim::Engine::Options opts;
  opts.nprocs = 1;
  sim::Engine::run(opts, [&](sim::Proc&) {
    int fd = staged.open("data", pfs::OpenMode::kCreate);
    staged.write_at(fd, 0, payload);

    // The drain exhausts its budget: a diagnosed IoError naming the extent
    // and the policy, never a silent drop.
    try {
      staged.drain_mine(DrainPolicy::kSync);
      ADD_FAILURE() << "drain should have exhausted its retry budget";
    } catch (const IoError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("stage.drain"), std::string::npos) << what;
      EXPECT_NE(what.find("data"), std::string::npos) << what;
      EXPECT_NE(what.find("retained"), std::string::npos) << what;
    }
    // No data loss: the staged bytes are still indexed and a later drain
    // (destination healthy again) migrates them.
    EXPECT_EQ(staged.staged_live_bytes(), payload.size());
    injector.set_enabled(false);
    staged.drain_mine(DrainPolicy::kSync);
    EXPECT_EQ(staged.staged_live_bytes(), 0u);

    std::vector<std::byte> out(payload.size());
    staged.read_at(fd, 0, out);
    EXPECT_EQ(out, payload);
    staged.close(fd);
  });
  ASSERT_TRUE(dest.store().exists("data"));
  std::vector<std::byte> drained(dest.store().size("data"));
  dest.store().read_at("data", 0, drained);
  EXPECT_EQ(drained, payload);
  EXPECT_GT(staged.drain_retries(), 0u);
}

// ---------------------------------------------------------------------------
// Recovery unit tests: torn tails and tombstones.
// ---------------------------------------------------------------------------

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  return v;
}

struct TierPair {
  net::NetworkParams np;
  pfs::StripedFsParams sp = striped_params();
  net::Network nw{np, 1, sp.n_io_nodes};
  pfs::StripedFs dest{sp, nw};
  pfs::LocalDiskFs staging{pfs::LocalDiskFsParams{}, 1};
};

TEST(StageRecover, TornTailIsDiscardedCommittedRecordsSurvive) {
  TierPair t;
  {
    StagedFs staged(StagedFsParams{}, t.staging, t.dest);
    sim::Engine::Options opts;
    opts.nprocs = 1;
    sim::Engine::run(opts, [&](sim::Proc&) {
      int f = staged.open("f", pfs::OpenMode::kCreate);
      staged.write_at(f, 0, pattern(1000, 1));
      staged.close(f);
      int g = staged.open("g", pfs::OpenMode::kCreate);
      staged.write_at(g, 0, pattern(500, 2));
      staged.close(g);
    });
  }
  // Tear the log's tail: chop into the last record's payload, as a crash
  // mid-append would.
  const std::string seg = ".stage/r0/seg0";
  ASSERT_TRUE(t.staging.store().exists(seg));
  std::vector<std::byte> raw(t.staging.store().size(seg));
  t.staging.store().read_at(seg, 0, raw);
  raw.resize(raw.size() - 100);  // cuts into g's payload
  t.staging.store().create(seg);  // truncate
  t.staging.store().write_at(seg, 0, raw);

  StagedFs staged2(StagedFsParams{}, t.staging, t.dest);
  staged2.recover();
  ASSERT_TRUE(staged2.store().exists("f"));
  std::vector<std::byte> f(staged2.store().size("f"));
  staged2.store().read_at("f", 0, f);
  EXPECT_EQ(f, pattern(1000, 1));
  // g's only record was torn: the file never became visible.
  EXPECT_FALSE(staged2.store().exists("g"));
}

TEST(StageRecover, RemoveTombstoneStopsResurrection) {
  TierPair t;
  {
    StagedFs staged(StagedFsParams{}, t.staging, t.dest);
    sim::Engine::Options opts;
    opts.nprocs = 1;
    sim::Engine::run(opts, [&](sim::Proc&) {
      int f = staged.open("f", pfs::OpenMode::kCreate);
      staged.write_at(f, 0, pattern(2000, 1));  // old generation, longer
      staged.close(f);
      staged.remove("f");
      int f2 = staged.open("f", pfs::OpenMode::kCreate);
      staged.write_at(f2, 0, pattern(500, 2));  // new generation, shorter
      staged.close(f2);
    });
  }
  StagedFs staged2(StagedFsParams{}, t.staging, t.dest);
  staged2.recover();
  ASSERT_TRUE(staged2.store().exists("f"));
  // Without the tombstone the old 2000-byte image would leak through.
  EXPECT_EQ(staged2.store().size("f"), 500u);
  std::vector<std::byte> f(500);
  staged2.store().read_at("f", 0, f);
  EXPECT_EQ(f, pattern(500, 2));
}

TEST(StageRecover, TruncateTombstoneDropsTheOldImage) {
  TierPair t;
  {
    StagedFs staged(StagedFsParams{}, t.staging, t.dest);
    sim::Engine::Options opts;
    opts.nprocs = 1;
    sim::Engine::run(opts, [&](sim::Proc&) {
      int f = staged.open("f", pfs::OpenMode::kCreate);
      staged.write_at(f, 0, pattern(2000, 1));
      staged.close(f);
      int f2 = staged.open("f", pfs::OpenMode::kCreate);  // truncates
      staged.write_at(f2, 0, pattern(100, 2));
      staged.close(f2);
    });
  }
  StagedFs staged2(StagedFsParams{}, t.staging, t.dest);
  staged2.recover();
  ASSERT_TRUE(staged2.store().exists("f"));
  EXPECT_EQ(staged2.store().size("f"), 100u);
}

TEST(StageRecover, DrainedBytesRecoverFromTheDestination) {
  TierPair t;
  {
    StagedFs staged(StagedFsParams{}, t.staging, t.dest);
    sim::Engine::Options opts;
    opts.nprocs = 1;
    sim::Engine::run(opts, [&](sim::Proc&) {
      int f = staged.open("f", pfs::OpenMode::kCreate);
      staged.write_at(f, 0, pattern(4096, 3));
      staged.drain_mine(DrainPolicy::kSync);
      staged.close(f);
    });
    staged.flush_untimed();  // removes the (empty) segment files too
  }
  ASSERT_TRUE(t.staging.store().list().empty())
      << "flush should leave no segment files behind";
  StagedFs staged2(StagedFsParams{}, t.staging, t.dest);
  staged2.recover();
  ASSERT_TRUE(staged2.store().exists("f"));
  std::vector<std::byte> f(4096);
  staged2.store().read_at("f", 0, f);
  EXPECT_EQ(f, pattern(4096, 3));
}

TEST(StageSegments, SmallSegmentsRollAndGcAfterDrain) {
  TierPair t;
  StagedFsParams params;
  params.segment_bytes = 4 * KiB;  // force frequent rolls
  StagedFs staged(params, t.staging, t.dest);
  sim::Engine::Options opts;
  opts.nprocs = 1;
  sim::Engine::run(opts, [&](sim::Proc&) {
    int f = staged.open("f", pfs::OpenMode::kCreate);
    for (int i = 0; i < 16; ++i) {
      staged.write_at(f, static_cast<std::uint64_t>(i) * 2048,
                      pattern(2048, static_cast<unsigned>(i)));
    }
    EXPECT_GT(staged.segments_created(), 4u);
    staged.drain_mine(DrainPolicy::kSync);
    EXPECT_EQ(staged.staged_live_bytes(), 0u);
    // Sealed segments are garbage-collected once fully drained; only the
    // rank's current segment may remain.
    EXPECT_GE(staged.segments_removed(), staged.segments_created() - 1);
    std::vector<std::byte> out(16 * 2048);
    staged.read_at(f, 0, out);  // all served from the destination now
    staged.close(f);
  });
  EXPECT_EQ(staged.unmapped_read_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Observability: an async drain's settle stall is blamed as "stage.drain".
// ---------------------------------------------------------------------------

TEST(StageBlame, SettleWaitIsBlamedAsStageDrain) {
  EXPECT_STREQ(obs::to_string(obs::BlameCategory::kStageDrain), "stage.drain");
  EXPECT_STREQ(obs::to_string(obs::WaitKind::kDrainWait), "drain_wait");

  TierPair t;
  StagedFs staged(StagedFsParams{}, t.staging, t.dest);
  obs::Collector col;
  col.set_detail(true);
  obs::attach(&col);
  sim::Engine::Options opts;
  opts.nprocs = 1;
  sim::Engine::run(opts, [&](sim::Proc&) {
    OBS_SPAN("dump", sim::TimeCategory::kIo);
    {
      OBS_SPAN("write", sim::TimeCategory::kIo);
      int f = staged.open("f", pfs::OpenMode::kCreate);
      staged.write_at(f, 0, pattern(512 * KiB));
      staged.drain_mine(DrainPolicy::kAsync);
      staged.close(f);
    }
    {
      // Settling immediately means the whole drain is exposed as a stall.
      OBS_SPAN("settle", sim::TimeCategory::kIo);
      staged.drain_settle();
    }
  });
  obs::detach();

  const obs::BlameReport r = obs::build_blame(col, "dump");
  ASSERT_EQ(r.nranks, 1);
  EXPECT_GT(
      r.blame[static_cast<std::size_t>(obs::BlameCategory::kStageDrain)], 0.0)
      << obs::blame_text(r);
}

// The staged write path must not depend on the destination geometry: the
// same workload staged over 1-stripe and 16-stripe destinations takes the
// same (virtual) dump time.
TEST(StageLatency, DumpTimeIndependentOfDestinationStripes) {
  auto dump_time = [&](int n_io_nodes) {
    net::NetworkParams np;
    pfs::StripedFsParams sp = striped_params();
    sp.n_io_nodes = n_io_nodes;
    net::Network nw(np, 1, sp.n_io_nodes);
    pfs::StripedFs dest(sp, nw);
    pfs::LocalDiskFs staging(pfs::LocalDiskFsParams{}, 1);
    StagedFs staged(StagedFsParams{}, staging, dest);
    double t = 0.0;
    sim::Engine::Options opts;
    opts.nprocs = 1;
    sim::Engine::run(opts, [&](sim::Proc& proc) {
      int f = staged.open("f", pfs::OpenMode::kCreate);
      const double t0 = proc.now();
      staged.write_at(f, 0, pattern(MiB));
      t = proc.now() - t0;
      staged.drain_mine(DrainPolicy::kSync);
      staged.close(f);
    });
    return t;
  };
  EXPECT_DOUBLE_EQ(dump_time(1), dump_time(16));
}

}  // namespace
}  // namespace paramrio::enzo
