#!/usr/bin/env python3
"""Project idiom lint: cheap, dependency-free static checks for the I/O
layer's house rules (run by CI next to clang-tidy; see docs/VERIFY.md).

Rules
-----
missing-wait
    A scope that issues a nonblocking `.iread_at(...)`/`.iwrite_at(...)`
    must lexically contain a `wait(`/`wait_all(` before the scope closes.
    The runtime verifier (src/verify/) catches the dynamic leak; this pass
    catches it at review time.  Suppress an intentional plant with
    `lint:allow(missing-wait)` on or directly above the call line.

deferred-raii
    `Proc::begin_deferred()`/`end_deferred()` are engine and DeferredScope
    internals; everything else models in-flight work through DeferredScope
    RAII.  Heap-allocating a DeferredScope defeats the RAII contract.
    Suppress with `lint:allow(deferred-raii)`.

obs-span
    Every public I/O entry point of mpi::io::File carries an OBS_SPAN so
    the cross-layer profiler sees it.  Extend ENTRY_POINTS when adding one.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
SCAN_DIRS = ["src", "tests", "examples", "bench"]

NONBLOCKING_CALL = re.compile(r"\.i(?:read|write)_at\s*\(")
WAIT_CALL = re.compile(r"\bwait(?:_all)?\s*\(")
DEFERRED_CALL = re.compile(r"\b(?:begin|end)_deferred\s*\(")
DEFERRED_HEAP = re.compile(r"new\s+DeferredScope|make_unique\s*<\s*DeferredScope")

# Files that legitimately touch the raw deferred-clock API: the engine
# itself and the RAII wrappers built directly on it (mpi::io::DeferredScope,
# stage/'s local DeferredRegion).
DEFERRED_ALLOWED = {
    Path("src/sim/engine.hpp"),
    Path("src/sim/engine.cpp"),
    Path("src/mpi/io/deferred_scope.hpp"),
    Path("src/stage/staged_fs.cpp"),
}

# Public I/O entry points of mpi::io::File that must open an OBS_SPAN.
OBS_SPAN_FILE = Path("src/mpi/io/file.cpp")
ENTRY_POINTS = [
    "close", "flush", "read_at", "write_at", "read_at_all", "write_at_all",
    "iread_at", "iwrite_at", "read_at_all_begin", "read_at_all_end",
    "write_at_all_begin", "write_at_all_end", "prefetch",
]


def strip_comment(line: str) -> str:
    return line.split("//", 1)[0]


def allowed(lines, idx, rule):
    """`lint:allow(rule)` on the line or the line above suppresses it."""
    marker = f"lint:allow({rule})"
    if marker in lines[idx]:
        return True
    return idx > 0 and marker in lines[idx - 1]


def scope_end(lines, start):
    """Index one past the enclosing scope of the statement at `start`:
    walk forward until brace depth drops below the call line's level."""
    depth = 0
    for i in range(start, len(lines)):
        for ch in strip_comment(lines[i]):
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth < 0:
                    return i + 1
    return len(lines)


def check_missing_wait(path, lines, findings):
    for i, line in enumerate(lines):
        if not NONBLOCKING_CALL.search(strip_comment(line)):
            continue
        if allowed(lines, i, "missing-wait"):
            continue
        end = scope_end(lines, i)
        body = "\n".join(strip_comment(l) for l in lines[i:end])
        if not WAIT_CALL.search(body):
            findings.append(
                f"{path}:{i + 1}: [missing-wait] nonblocking request "
                "issued with no wait()/wait_all() in the enclosing scope")


def check_deferred_raii(path, lines, findings):
    in_allowlist = path in DEFERRED_ALLOWED
    for i, line in enumerate(lines):
        code = strip_comment(line)
        if DEFERRED_HEAP.search(code):
            findings.append(
                f"{path}:{i + 1}: [deferred-raii] DeferredScope must live "
                "on the stack (RAII), not the heap")
        if in_allowlist:
            continue
        if DEFERRED_CALL.search(code) and not allowed(lines, i,
                                                      "deferred-raii"):
            findings.append(
                f"{path}:{i + 1}: [deferred-raii] raw begin/end_deferred "
                "outside the engine; use DeferredScope RAII")


def check_obs_span(findings):
    path = ROOT / OBS_SPAN_FILE
    lines = path.read_text().splitlines()
    for name in ENTRY_POINTS:
        sig = re.compile(r"File::" + re.escape(name) + r"\s*\(")
        for i, line in enumerate(lines):
            code = strip_comment(line)
            # A definition opens a scope; call sites end in ';'.
            if sig.search(code) and not code.rstrip().endswith(";"):
                body = "\n".join(lines[i:scope_end(lines, i)])
                if "OBS_SPAN" not in body:
                    findings.append(
                        f"{OBS_SPAN_FILE}:{i + 1}: [obs-span] public I/O "
                        f"entry point File::{name} has no OBS_SPAN")
                break
        else:
            findings.append(
                f"{OBS_SPAN_FILE}: [obs-span] expected entry point "
                f"File::{name} not found (update tools/lint)")


def main():
    findings = []
    for d in SCAN_DIRS:
        for path in sorted((ROOT / d).rglob("*")):
            if path.suffix not in {".cpp", ".hpp"}:
                continue
            rel = path.relative_to(ROOT)
            lines = path.read_text().splitlines()
            check_missing_wait(rel, lines, findings)
            check_deferred_raii(rel, lines, findings)
    check_obs_span(findings)

    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} idiom violation(s)", file=sys.stderr)
        return 1
    print("idiom lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
