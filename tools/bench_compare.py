#!/usr/bin/env python3
"""Validate and compare BENCH_*.json documents emitted by the bench harness.

Two modes:

  bench_compare.py --validate DIR
      Schema-check every BENCH_*.json under DIR.  Exits 1 on the first
      malformed document (bad JSON, missing/mistyped fields, empty rows),
      0 when all pass.  run_all_benches.sh uses this to fail loudly
      instead of archiving garbage.

  bench_compare.py BASE CAND [--tol-time F] [--advisory]
      Compare two runs.  BASE and CAND are each a BENCH_*.json file or a
      directory of them.  Rows are matched by (bench, platform, size,
      nprocs, backend); the simulator's virtual clock is deterministic,
      so by default every metric must match exactly.  --tol-time F
      allows candidate times up to F fractional slack above base (e.g.
      0.05 = 5%); byte/count metrics are always exact.  Faster times and
      rows present on only one side are reported but never fail the
      comparison (a new bench point is not a regression).

Exit codes: 0 clean, 1 regressions (or invalid schema), 2 usage/IO error.
"""

import argparse
import json
import os
import sys

# Every row the harness's JsonReporter emits carries exactly these metrics.
TIME_METRICS = ("write_time", "read_time")
EXACT_METRICS = ("fs_bytes_written", "fs_bytes_read", "payload_bytes", "grids")
ROW_KEY = ("platform", "size", "nprocs", "backend")


def fail_usage(msg):
    print("bench_compare: error: %s" % msg, file=sys.stderr)
    sys.exit(2)


def collect_files(path):
    """A BENCH_*.json file, or every one inside a directory (sorted)."""
    if os.path.isfile(path):
        return [path]
    if os.path.isdir(path):
        names = sorted(
            n for n in os.listdir(path)
            if n.startswith("BENCH_") and n.endswith(".json"))
        return [os.path.join(path, n) for n in names]
    fail_usage("no such file or directory: %s" % path)


def validate_doc(path, doc):
    """Return a list of schema problems (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append('missing or empty "bench" name')
    rows = doc.get("rows")
    if not isinstance(rows, list):
        return problems + ['"rows" is not an array']
    if not rows:
        problems.append('"rows" is empty')
    for i, row in enumerate(rows):
        where = "rows[%d]" % i
        if not isinstance(row, dict):
            problems.append("%s is not an object" % where)
            continue
        for k in ("platform", "size", "backend"):
            if not isinstance(row.get(k), str):
                problems.append('%s: "%s" is not a string' % (where, k))
        for k in ("nprocs",) + EXACT_METRICS:
            v = row.get(k)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                problems.append(
                    '%s: "%s" is not a non-negative integer' % (where, k))
        for k in TIME_METRICS:
            v = row.get(k)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                problems.append(
                    '%s: "%s" is not a non-negative number' % (where, k))
        if "metrics" in row and not isinstance(row["metrics"], dict):
            problems.append('%s: "metrics" is not an object' % where)
    return problems


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print("bench_compare: %s: %s" % (path, e), file=sys.stderr)
        return None


def mode_validate(directory):
    files = collect_files(directory)
    if not files:
        fail_usage("no BENCH_*.json files under %s" % directory)
    bad = 0
    for path in files:
        doc = load(path)
        problems = ["unreadable or malformed JSON"] if doc is None \
            else validate_doc(path, doc)
        if problems:
            bad += 1
            for p in problems:
                print("INVALID %s: %s" % (path, p), file=sys.stderr)
        else:
            print("ok %s (%d rows)" % (path, len(doc["rows"])))
    if bad:
        print("bench_compare: %d of %d documents invalid" % (bad, len(files)),
              file=sys.stderr)
        return 1
    return 0


def index_rows(files):
    """(bench, platform, size, nprocs, backend) -> row, across documents."""
    rows = {}
    for path in files:
        doc = load(path)
        if doc is None:
            sys.exit(2)
        problems = validate_doc(path, doc)
        if problems:
            for p in problems:
                print("INVALID %s: %s" % (path, p), file=sys.stderr)
            sys.exit(2)
        for row in doc["rows"]:
            key = (doc["bench"],) + tuple(row[k] for k in ROW_KEY)
            if key in rows:
                print("bench_compare: %s: duplicate row %s" % (path, key),
                      file=sys.stderr)
                sys.exit(2)
            rows[key] = row
    return rows


def describe(key):
    return "%s [%s %s nprocs=%s %s]" % key


def mode_compare(base_path, cand_path, tol_time, advisory):
    base = index_rows(collect_files(base_path))
    cand = index_rows(collect_files(cand_path))
    if not base or not cand:
        fail_usage("nothing to compare")

    regressions = []
    notes = []
    for key in sorted(base):
        if key not in cand:
            notes.append("only in base: %s" % describe(key))
            continue
        b, c = base[key], cand[key]
        for m in TIME_METRICS:
            bv, cv = b[m], c[m]
            if cv > bv * (1.0 + tol_time) + 1e-12:
                regressions.append(
                    "%s %s: %.6g -> %.6g (+%.2f%%, tol %.2f%%)"
                    % (describe(key), m, bv, cv,
                       100.0 * (cv - bv) / bv if bv else float("inf"),
                       100.0 * tol_time))
            elif cv < bv:
                notes.append("%s %s improved: %.6g -> %.6g"
                             % (describe(key), m, bv, cv))
        for m in EXACT_METRICS:
            if b[m] != c[m]:
                regressions.append("%s %s: %d != %d (exact metric)"
                                   % (describe(key), m, b[m], c[m]))
    for key in sorted(cand):
        if key not in base:
            notes.append("only in candidate: %s" % describe(key))

    for n in notes:
        print("note: %s" % n)
    for r in regressions:
        print("REGRESSION: %s" % r)
    matched = len(set(base) & set(cand))
    print("compared %d matching rows (%d base, %d candidate): %d regressions"
          % (matched, len(base), len(cand), len(regressions)))
    if regressions and advisory:
        print("advisory mode: regressions reported but not fatal")
        return 0
    return 1 if regressions else 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--validate", metavar="DIR",
                    help="schema-check every BENCH_*.json under DIR")
    ap.add_argument("paths", nargs="*", metavar="BASE CAND",
                    help="two files or directories to compare")
    ap.add_argument("--tol-time", type=float, default=0.0,
                    help="fractional slack on time metrics (default 0: exact)")
    ap.add_argument("--advisory", action="store_true",
                    help="report regressions but exit 0")
    args = ap.parse_args()

    if args.validate is not None:
        if args.paths:
            fail_usage("--validate takes no positional arguments")
        sys.exit(mode_validate(args.validate))
    if len(args.paths) != 2:
        fail_usage("expected BASE and CAND (or --validate DIR)")
    if args.tol_time < 0.0:
        fail_usage("--tol-time must be >= 0")
    sys.exit(mode_compare(args.paths[0], args.paths[1],
                          args.tol_time, args.advisory))


if __name__ == "__main__":
    main()
