// Run an ENZO checkpoint dump + restart under the MPI semantics verifier
// and render the resulting verify::Report for every I/O backend.
//
//   $ ./examples/verify_dump [seed]        # verify all four backends
//   $ ./examples/verify_dump --plant       # plant a defect, show the report
//
// `seed` feeds the engine's schedule perturbation (sim::Engine::Options::
// perturb_seed): 0 is the classic lowest-rank baton order, any nonzero value
// executes the same program under a different — equally legal — interleaving.
// A correct program must verify clean under every seed; that is exactly what
// the schedule-perturbation differential tests in tests/test_verify.cpp
// assert.  The --plant mode shows what a *dirty* report looks like: a rank
// that issues a nonblocking write and closes the file without waiting.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness.hpp"
#include "mpi/io/file.hpp"

using namespace paramrio;

namespace {

int verify_backends(std::uint64_t seed) {
  const bench::Backend backends[] = {
      bench::Backend::kHdf4, bench::Backend::kMpiIo, bench::Backend::kHdf5,
      bench::Backend::kPnetcdf};

  std::printf("verifying ENZO dump + restart, 4 ranks, seed %llu\n\n",
              static_cast<unsigned long long>(seed));
  int dirty = 0;
  for (bench::Backend b : backends) {
    verify::Verifier verifier;

    bench::RunSpec spec;
    spec.machine = platform::origin2000_xfs();
    spec.config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);
    spec.nprocs = 4;
    spec.backend = b;
    spec.verifier = &verifier;
    spec.sched_seed = seed;
    bench::run_enzo_io(spec);

    const verify::Report& report = verifier.report();
    std::printf("%-8s %s\n", bench::to_string(b).c_str(),
                report.clean() && report.lints() == 0
                    ? "clean"
                    : report.format().c_str());
    if (!report.clean()) ++dirty;
  }
  return dirty;
}

int plant_defect() {
  std::printf("planting a defect: iwrite_at with no wait before close\n\n");
  verify::Verifier verifier;
  {
    verify::Attach attach(verifier);
    platform::Testbed tb(platform::origin2000_xfs(), 2);
    tb.runtime().run([&](mpi::Comm& c) {
      mpi::io::Hints hints;
      hints.overlap = true;  // nonblocking ops actually stay in flight
      mpi::io::File f(c, tb.fs(), "planted.dat", pfs::OpenMode::kCreate,
                      hints);
      mpi::Bytes payload(4096, std::byte{0x42});
      mpi::io::Request r =
          f.iwrite_at(static_cast<std::uint64_t>(c.rank()) * payload.size(),
                      payload);
      if (c.rank() == 0) f.wait(r);  // rank 1 "forgets" its wait
      f.close();
    });
  }
  std::printf("%s\n", verifier.report().format().c_str());
  return verifier.report().clean() ? 1 : 0;  // a clean report means we failed
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--plant") return plant_defect();
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 0;
  return verify_backends(seed);
}
