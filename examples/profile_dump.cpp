// Profile a checkpoint dump with the cross-layer virtual-time profiler:
// attach an obs::Collector, run one MPI-IO checkpoint + restart on the
// simulated Origin2000, then print the phase breakdown, dump the unified
// metrics registry, and export a Chrome/Perfetto trace.
//
//   $ ./examples/profile_dump [trace.json]
//
// Load the trace at https://ui.perfetto.dev (or chrome://tracing): one
// track per rank, one duration slice per span, counter tracks for the
// collective-buffer windows and transfer sizes.
#include <cstdio>
#include <fstream>
#include <string>

#include "harness.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"

using namespace paramrio;

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "profile_dump.trace.json";

  obs::Collector collector;
  trace::IoTracer tracer;

  bench::RunSpec spec;
  spec.machine = platform::origin2000_xfs();
  spec.config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);
  spec.nprocs = 4;
  spec.backend = bench::Backend::kMpiIo;
  spec.collector = &collector;
  spec.tracer = &tracer;

  bench::IoResult r = bench::run_enzo_io(spec);
  std::printf("write %.3f s, read %.3f s (virtual)\n\n", r.write_time,
              r.read_time);

  // Phase breakdown: where each rank's virtual time went, per named span.
  obs::Report report = obs::build_report(collector);
  std::printf("%s\n", obs::report_text(report).c_str());

  // The unified metrics registry: engine, file-system, network, per-file
  // and trace statistics, all in one queryable place.
  std::printf("== metrics registry ==\n%s\n",
              collector.registry().format().c_str());

  std::ofstream os(trace_path);
  obs::write_chrome_trace(collector, os);
  std::printf("wrote %zu spans to %s\n", collector.spans().size(),
              trace_path.c_str());
  return 0;
}
