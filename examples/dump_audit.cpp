// Scenario: audit every checkpoint backend for I/O correctness.
//
// The paper's analysis (Section 3) explains *slow* checkpoints; this tool
// asks the prior question — is the checkpoint even *right*?  It runs a
// dump + restart cycle for each of the four backends with a check::IoChecker
// attached to the file system and prints one audit per backend: write-write
// conflicts, holes, read-before-write, descriptor-lifecycle bugs, and (on a
// striped file system) the Figure-7 alignment lints with per-backend counts.
//
//   $ ./examples/dump_audit
#include <cstdio>

#include "check/io_checker.hpp"
#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "mpi/comm.hpp"
#include "pfs/striped_fs.hpp"

using namespace paramrio;

namespace {

std::unique_ptr<enzo::IoBackend> make_backend(int i, pfs::FileSystem& fs) {
  switch (i) {
    case 0: return std::make_unique<enzo::Hdf4SerialBackend>(fs);
    case 1: return std::make_unique<enzo::MpiIoBackend>(fs);
    case 2: return std::make_unique<enzo::Hdf5ParallelBackend>(fs);
    default: return std::make_unique<enzo::PnetcdfBackend>(fs);
  }
}

const char* backend_name(int i) {
  switch (i) {
    case 0: return "hdf4-serial";
    case 1: return "mpi-io";
    case 2: return "hdf5-parallel";
    default: return "pnetcdf";
  }
}

check::CheckReport audit_backend(int which, int nprocs) {
  // A GPFS-like striped file system so the alignment lints are live.
  net::NetworkParams np;
  pfs::StripedFsParams sp;
  sp.fs_name = "gpfs";
  sp.stripe_size = 256 * KiB;
  sp.n_io_nodes = 4;
  net::Network nw(np, nprocs, sp.n_io_nodes);
  pfs::StripedFs fs(sp, nw);

  check::CheckOptions opts;
  opts.label = std::string(backend_name(which)) + " dump+restart on " +
               fs.name();
  opts.stripe_size = sp.stripe_size;
  // pnetcdf aligns its data region; the header/data padding is deliberate.
  opts.padding_alignment = 4096;
  check::IoChecker checker(opts);
  fs.attach_observer(&checker);

  mpi::RuntimeParams rp;
  rp.nprocs = nprocs;
  rp.extra_fabric_nodes = sp.n_io_nodes;
  mpi::Runtime rt(rp);
  rt.run([&](mpi::Comm& comm) {
    auto backend = make_backend(which, fs);
    enzo::SimulationConfig config;
    config.root_dims = {16, 16, 16};
    config.particles_per_cell = 0.25;
    config.compute_per_cell = 0.0;
    enzo::EnzoSimulation sim(comm, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();

    if (comm.rank() == 0) checker.begin_phase("dump");
    comm.barrier();
    backend->write_dump(comm, sim.state(), "audit");

    if (comm.rank() == 0) checker.begin_phase("restart");
    comm.barrier();
    enzo::EnzoSimulation restart(comm, config);
    backend->read_restart(comm, restart.state(), "audit");
  });
  return checker.analyze(&fs.store());
}

}  // namespace

int main() {
  const int nprocs = 4;
  std::printf("checkpoint correctness audit, %d ranks, all backends\n\n",
              nprocs);
  bool all_clean = true;
  for (int which = 0; which < 4; ++which) {
    check::CheckReport r = audit_backend(which, nprocs);
    std::printf("%s\n", r.format().c_str());
    all_clean = all_clean && r.clean();
  }
  std::printf("overall: %s\n", all_clean ? "all backends CLEAN"
                                         : "CORRECTNESS ERRORS FOUND");
  return all_clean ? 0 : 1;
}
