// Scenario: the other consumer the paper names for checkpoint dumps —
// "The output files from the checkpoint data dump are used either for
// restarting a resumed simulation or for visualization."
//
// A visualization client rarely wants the whole volume: this example dumps
// a simulation, then extracts (a) a single z-slice of the density field and
// (b) a 4x-downsampled volume, using strided hyperslab reads through the
// HDF5-analogue — the read pattern the recursive-packing overhead punishes.
//
//   $ ./examples/visualization_extract
#include <cstdio>
#include <cstring>

#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "platform/machine.hpp"

using namespace paramrio;

int main() {
  platform::Machine machine = platform::origin2000_xfs();
  platform::Testbed testbed(machine, 8);

  enzo::SimulationConfig config;
  config.root_dims = {64, 64, 64};

  testbed.runtime().run([&](mpi::Comm& comm) {
    enzo::Hdf5ParallelBackend backend(testbed.fs());
    enzo::EnzoSimulation sim(comm, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();
    backend.write_dump(comm, sim.state(), "viz");

    if (comm.rank() != 0) return;  // the viz client is a single process

    testbed.fs().drop_caches();
    hdf5::H5File file = hdf5::H5File::open(testbed.fs(), "viz.h5");
    hdf5::Dataset density = file.open_dataset("topgrid/density");
    const auto n = config.root_dims[0];

    // (a) one z-slice through the volume's centre.
    double t0 = comm.proc().now();
    hdf5::Dataspace slice({n, n, n});
    slice.select_block({n / 2, 0, 0}, {1, n, n});
    std::vector<std::byte> plane(n * n * 4);
    density.read(slice, plane, /*collective=*/false);
    double slice_time = comm.proc().now() - t0;

    // Where is the densest cell of the slice?
    float peak = 0;
    std::uint64_t peak_y = 0, peak_x = 0;
    for (std::uint64_t y = 0; y < n; ++y) {
      for (std::uint64_t x = 0; x < n; ++x) {
        float v;
        std::memcpy(&v, plane.data() + (y * n + x) * 4, 4);
        if (v > peak) {
          peak = v;
          peak_y = y;
          peak_x = x;
        }
      }
    }

    // (b) every 4th cell in each dimension: a 16^3 preview volume.
    t0 = comm.proc().now();
    hdf5::Dataspace coarse({n, n, n});
    coarse.select_hyperslab({hdf5::HyperslabDim{0, 4, n / 4, 1},
                             hdf5::HyperslabDim{0, 4, n / 4, 1},
                             hdf5::HyperslabDim{0, 4, n / 4, 1}});
    std::vector<std::byte> preview(coarse.selected_elements() * 4);
    density.read(coarse, preview, /*collective=*/false);
    double preview_time = comm.proc().now() - t0;

    std::printf("visualization extraction from a %llu^3 HDF5 dump:\n",
                static_cast<unsigned long long>(n));
    std::printf("  centre z-slice (%llu KB) : %.3f virtual s\n",
                static_cast<unsigned long long>(plane.size() / 1024),
                slice_time);
    std::printf("  4x-downsampled volume    : %.3f virtual s "
                "(strided: %zu noncontiguous runs)\n",
                preview_time, coarse.runs().size());
    std::printf("  densest slice cell: rho=%.2f at (y=%llu, x=%llu)\n", peak,
                static_cast<unsigned long long>(peak_y),
                static_cast<unsigned long long>(peak_x));
    density.close();
    file.close();
  });
  return 0;
}
