// Scenario: the other consumer the paper names for checkpoint dumps —
// "The output files from the checkpoint data dump are used either for
// restarting a resumed simulation or for visualization."
//
// A visualization client rarely wants the whole volume.  This example dumps
// one committed generation of a checkpoint series, then serves it through
// query::Service — the read-path layer that plans sub-volume requests into
// coalesced byte runs, sieves them into shared-cache blocks, and answers
// particle/metadata queries from the generation index:
//
//   (a) every rank pulls the same centre z-slice of the density field
//       concurrently (the hot region: one physical fetch set, N-1 cache
//       serves);
//   (b) rank 0 extracts an interior octant and a particle ID range;
//   (c) the per-request plan/cache report and the service counters show
//       what the reads actually cost.
//
//   $ ./examples/visualization_extract
#include <cstdio>

#include "enzo/backends.hpp"
#include "enzo/checkpoint.hpp"
#include "enzo/simulation.hpp"
#include "mdms/catalog.hpp"
#include "platform/machine.hpp"
#include "query/service.hpp"

using namespace paramrio;

int main() {
  platform::Machine machine = platform::chiba_pvfs_myrinet();
  constexpr int kProcs = 8;
  platform::Testbed testbed(machine, kProcs);

  enzo::SimulationConfig config;
  config.root_dims = {64, 64, 64};
  config.particles_per_cell = 0.25;

  // The index built for generation 0 is registered here; a later session
  // (or tool) can attach the same catalog and skip the re-inspection.
  mdms::Catalog catalog;

  query::Service::Params params;
  params.hints.ds_buffer_size = 64 * KiB;  // sieve blocks = one PVFS stripe
  params.hints.overlap = true;             // prefetch the next block
  query::Service service(testbed.fs(), "viz", params);
  service.attach_catalog(&catalog);

  testbed.runtime().run([&](mpi::Comm& comm) {
    enzo::Hdf5ParallelBackend backend(testbed.fs());
    enzo::EnzoSimulation sim(comm, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();
    enzo::CheckpointSeries series(backend, testbed.fs(), "viz");
    series.dump(comm, sim.state(), 0);
    comm.barrier();
    if (comm.rank() == 0) testbed.fs().drop_caches();  // cold readers
    comm.barrier();

    const auto n = config.root_dims[0];

    // (a) the hot region: every rank wants the same centre z-slice.
    query::SubVolumeRequest slice;
    slice.grid_id = 0;
    slice.field = "density";
    slice.start = {n / 2, 0, 0};
    slice.count = {1, n, n};
    query::ExtractPlan slice_plan;
    double t0 = comm.proc().now();
    std::vector<float> plane = service.extract(0, slice, &slice_plan);
    double slice_time = comm.proc().now() - t0;

    // Where is the densest cell of the slice?
    float peak = 0;
    std::uint64_t peak_y = 0, peak_x = 0;
    for (std::uint64_t y = 0; y < n; ++y) {
      for (std::uint64_t x = 0; x < n; ++x) {
        float v = plane[y * n + x];
        if (v > peak) {
          peak = v;
          peak_y = y;
          peak_x = x;
        }
      }
    }
    comm.barrier();

    if (comm.rank() != 0) return;  // the rest is the one analysis client

    // (b) an interior octant plus a particle ID range.
    query::SubVolumeRequest octant;
    octant.grid_id = 0;
    octant.field = "density";
    octant.start = {n / 2, n / 2, n / 2};
    octant.count = {n / 2, n / 2, n / 2};
    query::ExtractPlan octant_plan;
    t0 = comm.proc().now();
    std::vector<float> corner = service.extract(0, octant, &octant_plan);
    double octant_time = comm.proc().now() - t0;

    const query::GenerationIndex& ix = service.open_generation(0);
    query::ExtractPlan pplan;
    amr::ParticleSet tracked =
        service.particles(0, ix.id_min, ix.id_min + 999, &pplan);

    const enzo::DumpMeta& meta = service.metadata(0);

    std::printf("visualization extraction from a %llu^3 dump via "
                "query::Service on %s:\n",
                static_cast<unsigned long long>(n), machine.name.c_str());
    std::printf("  generation 0: cycle %llu, t=%.4f, %llu grids, %llu "
                "particles\n",
                static_cast<unsigned long long>(meta.cycle), meta.time,
                static_cast<unsigned long long>(
                    meta.hierarchy.grid_count()),
                static_cast<unsigned long long>(meta.n_particles));
    std::printf("  centre z-slice x%d readers : %.3f virtual s (this rank)\n",
                kProcs, slice_time);
    std::printf("%s", query::format_plan(slice_plan).c_str());
    std::printf("  interior octant            : %.3f virtual s\n",
                octant_time);
    std::printf("%s", query::format_plan(octant_plan).c_str());
    std::printf("  particles [%llu, %llu]       : %zu found\n",
                static_cast<unsigned long long>(ix.id_min),
                static_cast<unsigned long long>(ix.id_min + 999),
                tracked.size());
    std::printf("%s", query::format_plan(pplan).c_str());
    std::printf("  densest slice cell: rho=%.2f at (y=%llu, x=%llu)\n", peak,
                static_cast<unsigned long long>(peak_y),
                static_cast<unsigned long long>(peak_x));
    std::printf("service totals: %llu demand fetch(es), %llu prefetch(es), "
                "%llu cache hit(s), %llu shared wait(s), %.1f MB fetched "
                "for %.1f MB served\n",
                static_cast<unsigned long long>(service.demand_fetches()),
                static_cast<unsigned long long>(service.prefetches()),
                static_cast<unsigned long long>(service.cache().hits()),
                static_cast<unsigned long long>(
                    service.shared_fetch_waits()),
                static_cast<double>(service.fetched_bytes()) / 1.0e6,
                static_cast<double>(service.payload_bytes()) / 1.0e6);
    std::printf("catalog: %zu generation index(es) registered for 'viz'\n",
                catalog.series_generations("viz").size());
  });
  return 0;
}
