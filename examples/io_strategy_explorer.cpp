// Scenario: an interactive-style explorer for "what would this I/O strategy
// cost on that machine?" — the question the paper answers for four
// platforms.  Pick platform, problem size, processor count, and backend on
// the command line; prints timed write + restart-read results.
//
//   $ ./examples/io_strategy_explorer [platform] [size] [procs] [backend]
//     platform: origin | sp2 | pvfs | localdisk     (default origin)
//     size:     64 | 128 | 256                      (default 64)
//     procs:    any                                 (default 8)
//     backend:  hdf4 | mpiio | hdf5 | pnetcdf       (default mpiio)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "platform/machine.hpp"

using namespace paramrio;

int main(int argc, char** argv) {
  std::string plat = argc > 1 ? argv[1] : "origin";
  std::string size = argc > 2 ? argv[2] : "64";
  int nprocs = argc > 3 ? std::atoi(argv[3]) : 8;
  std::string back = argc > 4 ? argv[4] : "mpiio";

  platform::Machine machine;
  if (plat == "origin") {
    machine = platform::origin2000_xfs();
  } else if (plat == "sp2") {
    machine = platform::sp2_gpfs();
  } else if (plat == "pvfs") {
    machine = platform::chiba_pvfs_ethernet();
  } else if (plat == "localdisk") {
    machine = platform::chiba_local_disk();
  } else {
    std::fprintf(stderr, "unknown platform '%s'\n", plat.c_str());
    return 1;
  }

  enzo::SimulationConfig config;
  if (size == "64") {
    config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr64);
  } else if (size == "128") {
    config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr128);
  } else if (size == "256") {
    config = enzo::SimulationConfig::for_size(enzo::ProblemSize::kAmr256);
  } else {
    std::fprintf(stderr, "unknown size '%s'\n", size.c_str());
    return 1;
  }

  platform::Testbed testbed(machine, nprocs);
  testbed.runtime().run([&](mpi::Comm& comm) {
    std::unique_ptr<enzo::IoBackend> backend;
    if (back == "hdf4") {
      backend = std::make_unique<enzo::Hdf4SerialBackend>(testbed.fs());
    } else if (back == "mpiio") {
      backend = std::make_unique<enzo::MpiIoBackend>(testbed.fs());
    } else if (back == "hdf5") {
      backend = std::make_unique<enzo::Hdf5ParallelBackend>(testbed.fs());
    } else if (back == "pnetcdf") {
      backend = std::make_unique<enzo::PnetcdfBackend>(testbed.fs());
    } else {
      throw Error("unknown backend " + back);
    }

    enzo::EnzoSimulation sim(comm, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();

    comm.barrier();
    double t0 = comm.proc().now();
    backend->write_dump(comm, sim.state(), "explore");
    comm.barrier();
    double t1 = comm.proc().now();

    if (comm.rank() == 0) testbed.fs().drop_caches();
    enzo::EnzoSimulation fresh(comm, config);
    comm.barrier();
    double t2 = comm.proc().now();
    backend->read_restart(comm, fresh.state(), "explore");
    comm.barrier();
    double t3 = comm.proc().now();

    std::uint64_t written = comm.allreduce_sum(
        comm.proc().stats().io_bytes_written);
    if (comm.rank() == 0) {
      std::printf("%s, AMR%s, %d procs, %s backend\n", machine.name.c_str(),
                  size.c_str(), nprocs, backend->name().c_str());
      std::printf("  checkpoint write : %8.3f virtual s\n", t1 - t0);
      std::printf("  restart read     : %8.3f virtual s\n", t3 - t2);
      std::printf("  grids            : %zu (%llu refined cells)\n",
                  sim.state().hierarchy.grid_count(),
                  static_cast<unsigned long long>(
                      sim.state().hierarchy.total_cells() -
                      config.root_cells()));
      std::printf("  bytes written    : %8.2f MB (all ranks)\n",
                  static_cast<double>(written) / 1e6);
    }
  });
  return 0;
}
