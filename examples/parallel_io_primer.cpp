// Scenario: the MPI-IO substrate by itself — no cosmology.  Demonstrates
// the library's file views, derived datatypes, collective two-phase I/O and
// data sieving, by writing a (Block,Block,Block)-partitioned 3-D array and
// reading it back with a *different* decomposition, then comparing the
// strategies' virtual-time costs.
//
//   $ ./examples/parallel_io_primer
#include <cstdio>
#include <cstring>

#include "amr/decomp.hpp"
#include "mpi/io/file.hpp"
#include "platform/machine.hpp"

using namespace paramrio;

int main() {
  const std::uint64_t n = 64;
  const int nprocs = 8;
  platform::Machine machine = platform::sp2_gpfs();
  platform::Testbed testbed(machine, nprocs);

  testbed.runtime().run([&](mpi::Comm& comm) {
    // --- write a z-slab-decomposed double array collectively --------------
    auto [zs, zc] = amr::block_range(n, comm.size(), comm.rank());
    mpi::io::File file(comm, testbed.fs(), "cube", pfs::OpenMode::kCreate);
    file.set_view(0, mpi::Datatype::subarray({n, n, n}, {zc, n, n},
                                             {zs, 0, 0}, sizeof(double)));
    std::vector<double> mine(zc * n * n);
    for (std::uint64_t i = 0; i < mine.size(); ++i) {
      mine[i] = static_cast<double>(zs * n * n + i);
    }
    comm.barrier();
    double t0 = comm.proc().now();
    file.write_at_all(0, std::as_bytes(std::span(mine)));
    comm.barrier();
    double write_time = comm.proc().now() - t0;

    // --- read back x-slabs: every byte crosses ranks ---------------------
    if (comm.rank() == 0) testbed.fs().drop_caches();  // cold read
    auto [xs, xc] = amr::block_range(n, comm.size(), comm.rank());
    file.set_view(0, mpi::Datatype::subarray({n, n, n}, {n, n, xc},
                                             {0, 0, xs}, sizeof(double)));
    std::vector<double> cols(n * n * xc);
    comm.barrier();
    t0 = comm.proc().now();
    file.read_at_all(0, std::as_writable_bytes(std::span(cols)));
    comm.barrier();
    double coll_read = comm.proc().now() - t0;

    // Verify the transpose: element (z,y,x) must hold z*n*n + y*n + x.
    bool ok = true;
    std::size_t k = 0;
    for (std::uint64_t z = 0; z < n && ok; ++z) {
      for (std::uint64_t y = 0; y < n && ok; ++y) {
        for (std::uint64_t x = xs; x < xs + xc && ok; ++x) {
          ok = cols[k++] == static_cast<double>((z * n + y) * n + x);
        }
      }
    }

    // --- same strided read independently (data sieving) ------------------
    if (comm.rank() == 0) testbed.fs().drop_caches();  // cold comparison
    comm.barrier();
    t0 = comm.proc().now();
    file.read_at(0, std::as_writable_bytes(std::span(cols)));
    comm.barrier();
    double sieve_read = comm.proc().now() - t0;

    // --- and with sieving disabled: one request per row-fragment ---------
    mpi::io::Hints naive;
    naive.data_sieving_reads = false;
    mpi::io::File file2(comm, testbed.fs(), "cube", pfs::OpenMode::kRead,
                        naive);
    file2.set_view(0, mpi::Datatype::subarray({n, n, n}, {n, n, xc},
                                              {0, 0, xs}, sizeof(double)));
    if (comm.rank() == 0) testbed.fs().drop_caches();  // cold comparison
    comm.barrier();
    t0 = comm.proc().now();
    file2.read_at(0, std::as_writable_bytes(std::span(cols)));
    comm.barrier();
    double naive_read = comm.proc().now() - t0;

    if (comm.rank() == 0) {
      std::printf("64^3 doubles on %s, %d ranks\n", machine.name.c_str(),
                  nprocs);
      std::printf("  collective write (z-slabs)        : %8.3f s\n",
                  write_time);
      std::printf("  collective read  (x-slabs)        : %8.3f s\n",
                  coll_read);
      std::printf("  independent read with sieving     : %8.3f s\n",
                  sieve_read);
      std::printf("  independent read, naive           : %8.3f s\n",
                  naive_read);
      std::printf("  transpose verified: %s\n", ok ? "OK" : "FAILED");
      std::printf("\ntwo-phase < sieving << naive is the ROMIO story the "
                  "paper builds on\n");
    }
    file.close();
    file2.close();
  });
  return 0;
}
