// Critical-path blame analysis of a checkpoint dump: attach a detail-mode
// obs::Collector, run a tiny dump + restart on the simulated Origin2000 for
// a chosen ENZO backend, and print the blame report — which rank was the
// critical path and what it was waiting on (recv waits, server queues,
// token transfers, retry backoff, deferred settles).
//
//   $ ./examples/blame_report [hdf4|mpiio|hdf5|pnetcdf] [--json out.json]
//                             [--seed N] [--threads]
//
// The JSON document follows the schema CI's obs-blame job validates; the
// dump report is byte-identical across sched seeds and engine backends
// (tests/test_obs_enzo.cpp holds it to that — restart blame is per-seed,
// since demand reads race the cache and tied arbitration decides hits).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "harness.hpp"
#include "obs/critical_path.hpp"

using namespace paramrio;

int main(int argc, char** argv) {
  bench::Backend backend = bench::Backend::kMpiIo;
  std::string json_path;
  std::uint64_t seed = 0;
  sim::SchedBackend engine = sim::SchedBackend::kAuto;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "hdf4") {
      backend = bench::Backend::kHdf4;
    } else if (arg == "mpiio") {
      backend = bench::Backend::kMpiIo;
    } else if (arg == "hdf5") {
      backend = bench::Backend::kHdf5;
    } else if (arg == "pnetcdf") {
      backend = bench::Backend::kPnetcdf;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads") {
      engine = sim::SchedBackend::kThreads;
    } else {
      std::fprintf(stderr,
                   "usage: blame_report [hdf4|mpiio|hdf5|pnetcdf] "
                   "[--json out.json] [--seed N] [--threads]\n");
      return 2;
    }
  }

  obs::Collector collector;
  collector.set_detail(true);

  bench::RunSpec spec;
  spec.machine = platform::origin2000_xfs();
  spec.config.root_dims = {16, 16, 16};
  spec.config.particles_per_cell = 0.25;
  spec.nprocs = 4;
  spec.backend = backend;
  spec.collector = &collector;
  spec.sched_seed = seed;
  spec.engine_backend = engine;

  bench::IoResult r = bench::run_enzo_io(spec);
  std::printf("backend %s: write %.3f s, read %.3f s (virtual)\n\n",
              bench::to_string(backend).c_str(), r.write_time, r.read_time);

  const obs::BlameReport dump = obs::build_blame(collector, "dump");
  std::printf("%s\n", obs::blame_text(dump).c_str());
  const obs::BlameReport restart = obs::build_blame(collector, "restart_read");
  std::printf("%s\n", obs::blame_text(restart).c_str());

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    obs::write_blame_json(dump, os);
    if (!os.good()) {
      std::fprintf(stderr, "failed writing %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote blame JSON to %s\n", json_path.c_str());
  }
  return 0;
}
