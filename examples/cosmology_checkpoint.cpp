// Scenario: a production-style cosmology run — evolve the AMR hierarchy for
// several cycles, taking a checkpoint dump every second cycle with each of
// the three I/O backends in turn, and report how the grid hierarchy and the
// per-dump I/O cost evolve as the clumps collapse and drift.
//
//   $ ./examples/cosmology_checkpoint
#include <cstdio>
#include <memory>

#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "platform/machine.hpp"

using namespace paramrio;

int main() {
  platform::Machine machine = platform::origin2000_xfs();
  const int nprocs = 8;
  const int cycles = 6;

  struct Row {
    std::uint64_t cycle;
    std::size_t grids;
    std::uint64_t refined_cells;
    std::uint64_t particles;
    double hdf4_s, mpiio_s, hdf5_s, pnetcdf_s;
  };
  std::vector<Row> rows;

  platform::Testbed testbed(machine, nprocs);
  testbed.runtime().run([&](mpi::Comm& comm) {
    enzo::SimulationConfig config;
    config.root_dims = {64, 64, 64};
    config.star_formation_rate = 0.03;  // stars form as clumps collapse

    enzo::Hdf4SerialBackend hdf4(testbed.fs());
    enzo::MpiIoBackend mpiio(testbed.fs());
    enzo::Hdf5ParallelBackend hdf5(testbed.fs());
    enzo::PnetcdfBackend pnetcdf(testbed.fs());

    enzo::EnzoSimulation sim(comm, config);
    sim.initialize_from_universe();

    for (int cyc = 0; cyc < cycles; ++cyc) {
      sim.evolve_cycle();
      if (cyc % 2 != 1) continue;

      Row row{};
      row.cycle = sim.state().cycle;
      row.grids = sim.state().hierarchy.grid_count();
      row.refined_cells =
          sim.state().hierarchy.total_cells() - config.root_cells();
      row.particles = comm.allreduce_sum(sim.state().my_particles.size());

      auto timed = [&](enzo::IoBackend& b, const std::string& base) {
        comm.barrier();
        double t0 = comm.proc().now();
        b.write_dump(comm, sim.state(), base);
        comm.barrier();
        return comm.proc().now() - t0;
      };
      row.hdf4_s = timed(hdf4, "ckpt_hdf4");
      row.mpiio_s = timed(mpiio, "ckpt_mpiio");
      row.hdf5_s = timed(hdf5, "ckpt_hdf5");
      row.pnetcdf_s = timed(pnetcdf, "ckpt_pnetcdf");
      if (comm.rank() == 0) rows.push_back(row);
    }
  });

  std::printf("\ncheckpoint cost as the universe evolves (%s, %d procs)\n",
              machine.name.c_str(), nprocs);
  std::printf("%6s %7s %14s %10s %10s %10s %10s %11s\n", "cycle", "grids",
              "refined cells", "particles", "HDF4[s]", "MPI-IO[s]", "HDF5[s]",
              "PnetCDF[s]");
  for (const Row& r : rows) {
    std::printf("%6llu %7zu %14llu %10llu %10.3f %10.3f %10.3f %11.3f\n",
                static_cast<unsigned long long>(r.cycle), r.grids,
                static_cast<unsigned long long>(r.refined_cells),
                static_cast<unsigned long long>(r.particles), r.hdf4_s,
                r.mpiio_s, r.hdf5_s, r.pnetcdf_s);
  }
  std::printf(
      "\nthe ranking (MPI-IO ~ PnetCDF < HDF4 << HDF5) combines the paper's "
      "central result\nwith its future-work extension; star formation grows "
      "the dumps cycle over cycle\n");
  return 0;
}
