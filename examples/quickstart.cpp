// Quickstart: run the ENZO-style AMR cosmology application on a simulated
// SGI Origin2000, checkpoint it with the optimised MPI-IO backend, restart
// from the dump, and verify the restarted state — all in a few dozen lines.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "enzo/backends.hpp"
#include "enzo/dump_inspect.hpp"
#include "enzo/simulation.hpp"
#include "platform/machine.hpp"

using namespace paramrio;

int main() {
  // 1. Pick a platform model and a problem size.
  platform::Machine machine = platform::origin2000_xfs();
  platform::Testbed testbed(machine, /*nprocs=*/8);

  enzo::SimulationConfig config;
  config.root_dims = {32, 32, 32};
  config.particles_per_cell = 0.25;

  // 2. Run the SPMD program on the virtual machine.
  auto result = testbed.runtime().run([&](mpi::Comm& comm) {
    enzo::MpiIoBackend backend(testbed.fs());

    enzo::EnzoSimulation sim(comm, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();
    sim.evolve_cycle();

    comm.barrier();
    double t0 = comm.proc().now();
    backend.write_dump(comm, sim.state(), "quickstart");
    comm.barrier();
    double write_time = comm.proc().now() - t0;

    // Restart into a fresh simulation object and check it round-tripped.
    enzo::EnzoSimulation restarted(comm, config);
    backend.read_restart(comm, restarted.state(), "quickstart");

    bool ok = restarted.state().cycle == sim.state().cycle &&
              restarted.state().my_fields == sim.state().my_fields;
    if (comm.rank() == 0) {
      auto summary = enzo::inspect_dump(testbed.fs(), "quickstart");
      std::printf("%s", enzo::format_summary(summary, "quickstart").c_str());
      std::printf("wrote checkpoint in %.3f virtual seconds on %s\n",
                  write_time, machine.name.c_str());
      std::printf("hierarchy: %zu grids, %d levels\n",
                  sim.state().hierarchy.grid_count(),
                  sim.state().hierarchy.max_level() + 1);
      std::printf("restart round-trip: %s\n", ok ? "EXACT" : "MISMATCH");
    }
  });

  std::printf("virtual makespan: %.3f s; file system now holds %.2f MB\n",
              result.makespan,
              static_cast<double>(testbed.fs().store().total_bytes()) / 1e6);
  return 0;
}
