// Scenario: the paper's *methodology*, reproduced end to end.
//
// Section 3 of the paper analyses ENZO's file I/O behaviour (building on
// Pablo traces of the real code), discovers the useful metadata — request
// sizes, regular vs irregular patterns, access order — and derives the
// optimisation strategy from it.  Its future-work section proposes feeding
// that metadata into an MDMS (Meta-Data Management System).
//
// This example does exactly that pipeline on the reproduction:
//   1. run the application with an I/O tracer attached (HDF4 vs MPI-IO),
//   2. print the access-pattern analysis for both,
//   3. mine the trace into an MDMS catalog, persist it, and
//   4. print the advisor's per-dataset strategy recommendations.
//
//   $ ./examples/io_pattern_analysis
#include <cstdio>

#include "enzo/backends.hpp"
#include "enzo/simulation.hpp"
#include "mdms/catalog.hpp"
#include "platform/machine.hpp"
#include "trace/io_tracer.hpp"

using namespace paramrio;

namespace {

trace::IoTracer run_traced(const platform::Machine& machine, bool use_mpiio) {
  platform::Testbed tb(machine, 8);
  trace::IoTracer tracer;
  tb.fs().attach_observer(&tracer);
  tb.runtime().run([&](mpi::Comm& comm) {
    enzo::SimulationConfig config;
    config.root_dims = {32, 32, 32};
    enzo::EnzoSimulation sim(comm, config);
    sim.initialize_from_universe();
    sim.evolve_cycle();
    if (use_mpiio) {
      enzo::MpiIoBackend backend(tb.fs());
      backend.write_dump(comm, sim.state(), "trace_run");
    } else {
      enzo::Hdf4SerialBackend backend(tb.fs());
      backend.write_dump(comm, sim.state(), "trace_run");
    }
  });
  return tracer;
}

}  // namespace

int main() {
  platform::Machine machine = platform::origin2000_xfs();

  // --- 1+2: trace both strategies and print the Section-3-style analysis --
  trace::IoTracer hdf4_trace = run_traced(machine, /*use_mpiio=*/false);
  trace::IoTracer mpiio_trace = run_traced(machine, /*use_mpiio=*/true);
  std::printf("%s\n", hdf4_trace.format_report("HDF4 serial checkpoint").c_str());
  std::printf("%s\n",
              mpiio_trace.format_report("MPI-IO collective checkpoint").c_str());

  auto h = hdf4_trace.analyze();
  auto m = mpiio_trace.analyze();
  std::printf("observation: MPI-IO issues %.1fx larger write requests "
              "(mean %llu vs %llu bytes) into %llu file(s) instead of %llu\n\n",
              m.writes.mean_request() / h.writes.mean_request(),
              static_cast<unsigned long long>(m.writes.mean_request()),
              static_cast<unsigned long long>(h.writes.mean_request()),
              static_cast<unsigned long long>(m.files_touched),
              static_cast<unsigned long long>(h.files_touched));

  // --- 3: mine the MPI-IO trace into a persistent MDMS catalog ------------
  mdms::Catalog catalog;
  catalog.learn_from_trace(mpiio_trace);
  {
    platform::Testbed tb(machine, 1);
    tb.runtime().run(
        [&](mpi::Comm&) { catalog.save(tb.fs(), "enzo.mdms"); });
  }

  // --- 4: advise per dataset on two very different platforms --------------
  mdms::PlatformTraits origin_traits;
  origin_traits.shared_file_write_locks = false;
  origin_traits.stripe_size = machine.local_fs.stripe_size;
  origin_traits.io_parallelism = machine.local_fs.n_disks;

  mdms::PlatformTraits gpfs_traits;
  gpfs_traits.shared_file_write_locks = true;
  gpfs_traits.stripe_size = 256 * KiB;
  gpfs_traits.io_parallelism = 12;

  std::printf("MDMS advice (top entries by traffic):\n");
  int shown = 0;
  for (const std::string& name : catalog.names()) {
    const auto& rec = catalog.lookup(name);
    if (rec.total_bytes < 64 * KiB || shown >= 4) continue;
    ++shown;
    auto a1 = mdms::advise(rec, origin_traits);
    auto a2 = mdms::advise(rec, gpfs_traits);
    std::printf("  %-16s pattern=%-16s writers=%u typical=%llu B\n",
                name.c_str(), mdms::to_string(rec.pattern).c_str(),
                rec.writer_count,
                static_cast<unsigned long long>(rec.typical_request));
    std::printf("    on XFS : %s\n", a1.rationale.c_str());
    std::printf("    on GPFS: %s\n", a2.rationale.c_str());
  }
  return 0;
}
